//! The campaign executor: a fixed worker pool over a shared work
//! queue, with per-job panic isolation, one bounded retry, and the
//! result cache in front of the simulator.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use berti_sim::Report;
use berti_traces::TraceRegistry;
use serde::Value;

use crate::cache::ResultCache;
use crate::campaign::{Campaign, JobSpec};
use crate::events::{Event, EventSink};

/// How a campaign should be executed.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker-pool size (`--jobs N`); 0 means "available parallelism".
    pub jobs: usize,
    /// Result-cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// JSONL event-stream path; `None` disables the stream.
    pub events_path: Option<PathBuf>,
    /// Paint a live progress line on stderr.
    pub progress: bool,
    /// Emit a [`Event::JobInterval`] time-series point every this many
    /// retired instructions of each job's measurement phase; `None`
    /// disables interval sampling. Sampling is observation-only: it
    /// never changes reports (or therefore cache keys/contents).
    pub interval: Option<u64>,
    /// Directory of trace files (`--trace-dir`); discovered traces
    /// join the builtin workloads in the campaign's registry. Note
    /// that cache keys are derived from workload *names*: point
    /// different trace dirs at the same cache only if same-named
    /// files are the same traces.
    pub trace_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: 0,
            cache_dir: Some(PathBuf::from("results/cache")),
            events_path: None,
            progress: false,
            interval: None,
            trace_dir: None,
        }
    }
}

impl RunOptions {
    /// The effective worker count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Terminal state of one cell.
// A Report is much bigger than a failure record, but there is exactly
// one outcome per cell and almost all of them carry reports — boxing
// would cost an allocation per cell for no measurable saving.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The cell has a report.
    Done {
        /// The simulation report.
        report: Report,
        /// Whether it came from the result cache.
        cached: bool,
    },
    /// The cell could not produce a report: its configuration was
    /// rejected up front, or both execution attempts panicked.
    Failed {
        /// The validation diagnostic or the captured panic message of
        /// the last attempt.
        error: String,
        /// Attempts made: 1 for cells rejected by config validation or
        /// failing with a typed executor error such as a corrupt trace
        /// (retrying cannot help), 2 for panicking cells (initial +
        /// one retry).
        attempts: u32,
    },
}

/// One cell's spec, key, and outcome.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The cell that ran.
    pub spec: JobSpec,
    /// Its cache key.
    pub key: String,
    /// What happened.
    pub outcome: JobOutcome,
}

/// All results of one campaign run, in campaign (declaration) order.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Campaign name.
    pub name: String,
    /// Per-cell results, ordered as the campaign declared its cells.
    pub jobs: Vec<JobResult>,
    /// End-to-end wall time, milliseconds.
    pub wall_ms: u64,
}

impl CampaignResult {
    /// Cells that produced a report.
    pub fn completed(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Done { .. }))
            .count()
    }

    /// Cells answered from the cache.
    pub fn cache_hits(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, JobOutcome::Done { cached: true, .. }))
            .count()
    }

    /// Cells that failed both attempts.
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.completed()
    }

    /// The report for a cell, if it completed.
    pub fn report(&self, workload: &str, label: &str) -> Option<&Report> {
        self.jobs.iter().find_map(|j| match &j.outcome {
            JobOutcome::Done { report, .. }
                if j.spec.workload == workload && j.spec.label() == label =>
            {
                Some(report)
            }
            _ => None,
        })
    }

    /// Reports of all completed cells with the given configuration
    /// label, in campaign order.
    pub fn reports_for_label(&self, label: &str) -> Vec<&Report> {
        self.jobs
            .iter()
            .filter(|j| j.spec.label() == label)
            .filter_map(|j| match &j.outcome {
                JobOutcome::Done { report, .. } => Some(report),
                _ => None,
            })
            .collect()
    }

    /// Deterministic aggregated JSON of the whole campaign: cells
    /// sorted by cache key, wall-clock data excluded, so the same
    /// campaign serializes byte-identically regardless of worker
    /// count, scheduling, or cache temperature.
    pub fn aggregated_json(&self) -> String {
        let mut cells: Vec<&JobResult> = self.jobs.iter().collect();
        cells.sort_by(|a, b| a.key.cmp(&b.key));
        let cells: Vec<Value> = cells
            .into_iter()
            .map(|j| {
                let mut o = vec![
                    ("key".to_string(), Value::Str(j.key.clone())),
                    ("spec".to_string(), serde::Serialize::to_value(&j.spec)),
                ];
                match &j.outcome {
                    JobOutcome::Done { report, .. } => {
                        o.push(("report".to_string(), serde::Serialize::to_value(report)));
                    }
                    JobOutcome::Failed { error, attempts } => {
                        o.push(("error".to_string(), Value::Str(error.clone())));
                        o.push(("attempts".to_string(), Value::U64(*attempts as u64)));
                    }
                }
                Value::Object(o)
            })
            .collect();
        let root = Value::Object(vec![
            ("campaign".to_string(), Value::Str(self.name.clone())),
            ("cells".to_string(), Value::Array(cells)),
        ]);
        let mut s = serde::json::to_string_pretty(&root);
        s.push('\n');
        s
    }
}

/// Builds the workload registry a campaign resolves against: builtins
/// plus anything discovered under `trace_dir`.
///
/// # Panics
///
/// Panics when the trace dir cannot be scanned or a file clashes with
/// a registered name — both are configuration errors the caller
/// should have caught pre-dispatch (see [`check_workload`]).
pub fn build_registry(trace_dir: Option<&Path>) -> TraceRegistry {
    match trace_dir {
        None => TraceRegistry::builtin(),
        Some(dir) => TraceRegistry::with_trace_dir(dir)
            .unwrap_or_else(|e| panic!("trace dir {}: {e}", dir.display())),
    }
}

/// Pre-dispatch workload check: `Err` with a "did you mean" diagnostic
/// when `name` is not in the registry. Mirrors `SimOptions::validate` —
/// reject bad cells with a deterministic message before the cache or
/// the simulator ever sees them.
pub fn check_workload(registry: &TraceRegistry, name: &str) -> Result<(), String> {
    if registry.get(name).is_some() {
        return Ok(());
    }
    let near = registry.suggest(name, 3);
    let mut msg = format!("unknown workload `{name}`");
    if near.is_empty() {
        msg.push_str(" (run `campaign list` for all names)");
    } else {
        msg.push_str(&format!(" — did you mean {}?", near.join(", ")));
    }
    Err(msg)
}

/// Executes one cell with the real simulator: resolves the workload
/// against `registry`, runs the simulation (instrumented when
/// `interval` is set, forwarding each window as an
/// [`Event::JobInterval`] through `emit`), and returns the report.
///
/// This is the single execution path shared by every executor — the
/// in-process worker pool below and `berti-serve`'s worker processes —
/// so a cell produces byte-identical reports no matter which engine ran
/// it. An unknown workload or an unreadable/corrupt trace file is a
/// typed `Err` — deterministic, so callers fail the cell without
/// retrying; only genuine simulator panics need `catch_unwind` (or a
/// process boundary).
pub fn execute_spec_in(
    registry: &TraceRegistry,
    spec: &JobSpec,
    interval: Option<u64>,
    emit: &mut dyn FnMut(Event),
) -> Result<Report, String> {
    let workload = registry
        .get(&spec.workload)
        .ok_or_else(|| format!("unknown workload `{}`", spec.workload))?;
    let mut trace = workload
        .try_trace()
        .map_err(|e| format!("workload `{}`: {e}", spec.workload))?;
    Ok(match interval {
        None => berti_sim::simulate_with_l2(
            &spec.config,
            spec.l1.clone(),
            spec.l2,
            &mut trace,
            &spec.opts,
        ),
        Some(n) => {
            let key = spec.key();
            let label = spec.label();
            let mut sink = |s: berti_sim::IntervalSample| {
                emit(Event::JobInterval {
                    key: key.clone(),
                    workload: spec.workload.clone(),
                    label: label.clone(),
                    instructions: s.instructions,
                    ipc: s.ipc,
                    l1d_mpki: s.l1d_mpki,
                    l2_mpki: s.l2_mpki,
                    llc_mpki: s.llc_mpki,
                    l1d_accuracy: s.l1d_accuracy,
                });
            };
            berti_sim::simulate_instrumented(
                &spec.config,
                spec.l1.clone(),
                spec.l2,
                &mut trace,
                &spec.opts,
                berti_sim::Engine::default(),
                Some(berti_sim::Sampling {
                    interval: n,
                    sink: &mut sink,
                }),
            )
        }
    })
}

/// One-shot variant of [`execute_spec_in`]: builds the registry for
/// `trace_dir` (builtins only when `None`) and executes the cell.
/// `berti-serve` workers use this — one cell per request; the registry
/// rebuild is cheap, and the decoded-trace cache means repeated cells
/// naming the same trace decode it once per worker process.
pub fn execute_spec(
    spec: &JobSpec,
    trace_dir: Option<&Path>,
    interval: Option<u64>,
    emit: &mut dyn FnMut(Event),
) -> Result<Report, String> {
    execute_spec_in(&build_registry(trace_dir), spec, interval, emit)
}

/// Runs a campaign with the real simulator. The registry (builtins +
/// `opts.trace_dir`) is built once and shared by all workers; cells
/// naming unknown workloads fail pre-dispatch with a "did you mean"
/// diagnostic instead of burning a retry on a panic.
pub fn run_campaign(campaign: &Campaign, opts: &RunOptions) -> CampaignResult {
    let interval = opts.interval;
    let registry = build_registry(opts.trace_dir.as_deref());
    run_campaign_inner(
        campaign,
        opts,
        Some(&|spec: &JobSpec| check_workload(&registry, &spec.workload)),
        |spec, emit| execute_spec_in(&registry, spec, interval, emit),
    )
}

/// Runs a campaign with an arbitrary executor (tests inject failing or
/// instant executors here).
pub fn run_campaign_with<F>(campaign: &Campaign, opts: &RunOptions, exec: F) -> CampaignResult
where
    F: Fn(&JobSpec) -> Report + Sync,
{
    run_campaign_with_events(campaign, opts, |spec, _emit| exec(spec))
}

/// Like [`run_campaign_with`], for executors that fail with a typed
/// error: an `Err` cell fails immediately without a retry (the error is
/// deterministic), unlike a panicking one.
pub fn run_campaign_try_with<F>(campaign: &Campaign, opts: &RunOptions, exec: F) -> CampaignResult
where
    F: Fn(&JobSpec) -> Result<Report, String> + Sync,
{
    run_campaign_inner(campaign, opts, None, |spec, _emit| exec(spec))
}

/// Runs a campaign with an executor that can also emit events into the
/// campaign's stream (the real simulator uses this to forward interval
/// time-series points as [`Event::JobInterval`]).
///
/// Scheduling: all cells go into a shared queue; `jobs` workers drain
/// it. Each cell is first tried against the result cache; on a miss
/// the executor runs under [`catch_unwind`], and a panicking attempt
/// is retried once before the cell is marked failed. A failing or
/// panicking cell never takes its siblings down.
pub fn run_campaign_with_events<F>(
    campaign: &Campaign,
    opts: &RunOptions,
    exec: F,
) -> CampaignResult
where
    F: Fn(&JobSpec, &mut dyn FnMut(Event)) -> Report + Sync,
{
    // No workload precheck on the generic path: injected executors are
    // free to use workload names the registry has never heard of.
    run_campaign_inner(campaign, opts, None, |spec, emit| Ok(exec(spec, emit)))
}

type Precheck<'a> = &'a (dyn Fn(&JobSpec) -> Result<(), String> + Sync);

fn run_campaign_inner<F>(
    campaign: &Campaign,
    opts: &RunOptions,
    precheck: Option<Precheck<'_>>,
    exec: F,
) -> CampaignResult
where
    F: Fn(&JobSpec, &mut dyn FnMut(Event)) -> Result<Report, String> + Sync,
{
    let started = Instant::now();
    let cache = opts
        .cache_dir
        .as_ref()
        .and_then(|d| ResultCache::open(d).ok());
    let jobs = opts.effective_jobs();

    let (event_tx, event_rx) = mpsc::channel::<Event>();
    let (work_tx, work_rx) = mpsc::channel::<usize>();
    for i in 0..campaign.cells.len() {
        let _ = work_tx.send(i);
    }
    drop(work_tx);
    let work_rx = Mutex::new(work_rx);

    let slots: Vec<Mutex<Option<JobResult>>> =
        campaign.cells.iter().map(|_| Mutex::new(None)).collect();

    let _ = event_tx.send(Event::CampaignStarted {
        campaign: campaign.name.clone(),
        cells: campaign.cells.len(),
        jobs,
    });

    // The collector outlives the worker scope so the campaign summary
    // (which needs the joined results) flows through the same sink.
    let mut sink = EventSink::new(
        opts.events_path.as_deref(),
        opts.progress,
        campaign.cells.len(),
    );
    let collector = std::thread::spawn(move || {
        while let Ok(e) = event_rx.recv() {
            sink.record(&e);
        }
        sink.finish();
    });

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(campaign.cells.len()).max(1) {
            let event_tx = event_tx.clone();
            let work_rx = &work_rx;
            let slots = &slots;
            let cache = cache.as_ref();
            let exec = &exec;
            scope.spawn(move || loop {
                let Some(idx) = next_index(work_rx) else {
                    return;
                };
                let spec = &campaign.cells[idx];
                let result = run_cell(spec, cache, precheck, exec, &event_tx);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    let jobs_out: Vec<JobResult> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every queued cell produces a result")
        })
        .collect();

    let wall_ms = started.elapsed().as_millis() as u64;
    let result = CampaignResult {
        name: campaign.name.clone(),
        jobs: jobs_out,
        wall_ms,
    };

    let _ = event_tx.send(Event::CampaignFinished {
        campaign: result.name.clone(),
        completed: result.completed(),
        failed: result.failed(),
        cache_hits: result.cache_hits(),
        wall_ms,
    });
    drop(event_tx);
    let _ = collector.join();
    result
}

fn next_index(work_rx: &Mutex<mpsc::Receiver<usize>>) -> Option<usize> {
    work_rx.lock().expect("work queue poisoned").recv().ok()
}

fn run_cell<F>(
    spec: &JobSpec,
    cache: Option<&ResultCache>,
    precheck: Option<Precheck<'_>>,
    exec: &F,
    events: &mpsc::Sender<Event>,
) -> JobResult
where
    F: Fn(&JobSpec, &mut dyn FnMut(Event)) -> Result<Report, String> + Sync,
{
    let key = spec.key();
    let workload = spec.workload.clone();
    let label = spec.label();

    // Reject invalid grid cells before touching the cache or the
    // simulator: a deterministic diagnostic on this one cell, not a
    // panic caught (and pointlessly retried) by the isolation path.
    // The precheck (unknown-workload rejection) runs the same way.
    let rejected = spec
        .opts
        .validate(&spec.config)
        .map_err(|e| e.to_string())
        .and_then(|()| precheck.map_or(Ok(()), |check| check(spec)));
    if let Err(error) = rejected {
        let _ = events.send(Event::JobFailed {
            key: key.clone(),
            workload,
            label,
            attempt: 1,
            will_retry: false,
            error: error.clone(),
        });
        return JobResult {
            spec: spec.clone(),
            key,
            outcome: JobOutcome::Failed { error, attempts: 1 },
        };
    }

    if let Some(report) = cache.and_then(|c| c.lookup(spec)) {
        let _ = events.send(Event::JobCacheHit {
            key: key.clone(),
            workload,
            label,
        });
        return JobResult {
            spec: spec.clone(),
            key,
            outcome: JobOutcome::Done {
                report,
                cached: true,
            },
        };
    }

    let _ = events.send(Event::JobStarted {
        key: key.clone(),
        workload: workload.clone(),
        label: label.clone(),
    });

    const MAX_ATTEMPTS: u32 = 2;
    let mut last_error = String::new();
    for attempt in 1..=MAX_ATTEMPTS {
        let started = Instant::now();
        let mut emit = |e: Event| {
            let _ = events.send(e);
        };
        match catch_unwind(AssertUnwindSafe(|| exec(spec, &mut emit))) {
            Ok(Err(error)) => {
                // A typed executor failure (unknown workload, corrupt
                // or unreadable trace) is deterministic: fail the cell
                // now, a retry cannot change the answer.
                let _ = events.send(Event::JobFailed {
                    key: key.clone(),
                    workload,
                    label,
                    attempt,
                    will_retry: false,
                    error: error.clone(),
                });
                return JobResult {
                    spec: spec.clone(),
                    key,
                    outcome: JobOutcome::Failed {
                        error,
                        attempts: attempt,
                    },
                };
            }
            Ok(Ok(report)) => {
                if let Some(c) = cache {
                    let _ = c.store(spec, &report);
                }
                let wall_ms = started.elapsed().as_millis() as u64;
                let wall_s = (wall_ms as f64 / 1000.0).max(1e-9);
                let _ = events.send(Event::JobFinished {
                    key: key.clone(),
                    workload,
                    label,
                    wall_ms,
                    instructions: report.instructions,
                    mips: report.instructions as f64 / 1e6 / wall_s,
                    ipc: report.ipc(),
                });
                return JobResult {
                    spec: spec.clone(),
                    key,
                    outcome: JobOutcome::Done {
                        report,
                        cached: false,
                    },
                };
            }
            Err(payload) => {
                last_error = panic_message(payload);
                let _ = events.send(Event::JobFailed {
                    key: key.clone(),
                    workload: workload.clone(),
                    label: label.clone(),
                    attempt,
                    will_retry: attempt < MAX_ATTEMPTS,
                    error: last_error.clone(),
                });
            }
        }
    }

    JobResult {
        spec: spec.clone(),
        key,
        outcome: JobOutcome::Failed {
            error: last_error,
            attempts: MAX_ATTEMPTS,
        },
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
