//! The pluggable result-store abstraction.
//!
//! [`ResultStore`] is the storage contract behind the content-addressed
//! result cache: four primitive operations (`get`/`put`/`list`/`clear`)
//! keyed by the spec content hash ([`JobSpec::key`]), plus provided
//! spec-checked [`lookup`](ResultStore::lookup) /
//! [`store`](ResultStore::store) helpers built on top of them. The
//! local-directory backend ([`ResultCache`](crate::ResultCache)) is the
//! first implementation; because the trait is object-safe and entries
//! are self-validating (`schema_version` + full spec echo), additional
//! backends (an object store, a remote cache service) drop in without
//! touching the executor or the daemon.
//!
//! Multiple processes — the one-shot `campaign` CLI, several
//! `berti-serve` daemons, their worker processes — can safely share one
//! store as long as `put` is atomic (publish-or-nothing), which the
//! local backend guarantees via unique temp files renamed into place.

use berti_sim::Report;

use crate::cache::{CachedResult, CACHE_SCHEMA_VERSION};
use crate::campaign::JobSpec;

/// A content-addressed store of completed simulation cells.
///
/// Keys are [`JobSpec::key`] hashes. Implementations must make `put`
/// atomic with respect to concurrent readers and writers: a `get` may
/// observe the old entry or the new one, never a torn mix, even if a
/// writer is killed mid-`put`.
pub trait ResultStore: Send + Sync {
    /// Fetches the entry stored under `key`, if one exists and parses.
    /// Corrupt or unreadable entries read as `None`.
    fn get(&self, key: &str) -> Option<CachedResult>;

    /// Publishes `entry` under `key` (replacing any previous entry).
    fn put(&self, key: &str, entry: &CachedResult) -> std::io::Result<()>;

    /// Keys of all entries currently stored, sorted.
    fn list(&self) -> Vec<String>;

    /// Deletes every entry; returns how many were removed.
    fn clear(&self) -> std::io::Result<usize>;

    /// Looks up `spec`; returns its report only if a valid entry with a
    /// matching schema version *and* matching spec exists (hash
    /// collisions and hand-edited entries are detected, not trusted).
    fn lookup(&self, spec: &JobSpec) -> Option<Report> {
        let cached = self.get(&spec.key())?;
        if cached.schema_version != CACHE_SCHEMA_VERSION || cached.spec != *spec {
            return None;
        }
        Some(cached.report)
    }

    /// Stores a completed cell under its spec's content hash.
    fn store(&self, spec: &JobSpec, report: &Report) -> std::io::Result<()> {
        self.put(
            &spec.key(),
            &CachedResult {
                schema_version: CACHE_SCHEMA_VERSION,
                spec: spec.clone(),
                report: report.clone(),
            },
        )
    }
}
