//! Built-in campaigns: the paper's evaluation grids, by name.
//!
//! The contender lists here are the single source of truth — the
//! `berti-bench` figure binaries and the `campaign` CLI both build
//! their grids from them.

use berti_sim::{L2PrefetcherChoice, PrefetcherChoice, SimOptions};

use crate::campaign::Campaign;

/// The L1D prefetchers of Fig. 8/10/11 (the baseline IP-stride is the
/// denominator of every speedup).
pub fn l1d_contenders() -> Vec<PrefetcherChoice> {
    vec![
        PrefetcherChoice::Mlop,
        PrefetcherChoice::Ipcp,
        PrefetcherChoice::Berti,
    ]
}

/// The multi-level combinations of Fig. 12/13 (L1D + L2).
pub fn multilevel_contenders() -> Vec<(PrefetcherChoice, Option<L2PrefetcherChoice>)> {
    vec![
        (PrefetcherChoice::Mlop, Some(L2PrefetcherChoice::Bingo)),
        (PrefetcherChoice::Mlop, Some(L2PrefetcherChoice::SppPpf)),
        (PrefetcherChoice::Ipcp, Some(L2PrefetcherChoice::Ipcp)),
        (PrefetcherChoice::Berti, Some(L2PrefetcherChoice::Bingo)),
        (PrefetcherChoice::Berti, Some(L2PrefetcherChoice::SppPpf)),
    ]
}

/// Names of all built-in campaigns, with a one-line description each.
pub fn builtin_campaigns() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "quick",
            "2 workloads × {ip-stride, berti} smoke grid (4 cells)",
        ),
        (
            "l1d",
            "memory-intensive suite × {ip-stride, mlop, ipcp, berti} (Fig. 8/10/11)",
        ),
        (
            "multilevel",
            "memory-intensive suite × multi-level combinations (Fig. 12/13)",
        ),
        (
            "cloud",
            "CloudSuite-like workloads × {ip-stride, mlop, ipcp, berti} (Sec. IV-G)",
        ),
    ]
}

/// Builds a built-in campaign by name.
pub fn builtin(name: &str, opts: SimOptions) -> Option<Campaign> {
    let c = match name {
        "quick" => Campaign::grid("quick")
            .workload("lbm-like")
            .workload("bfs-kron")
            .l1(PrefetcherChoice::IpStride)
            .l1(PrefetcherChoice::Berti),
        "l1d" => Campaign::grid("l1d")
            .workloads(&berti_traces::memory_intensive_suite())
            .l1(PrefetcherChoice::IpStride)
            .configs(l1d_contenders().into_iter().map(|p| (p, None))),
        "multilevel" => Campaign::grid("multilevel")
            .workloads(&berti_traces::memory_intensive_suite())
            .l1(PrefetcherChoice::IpStride)
            .configs(multilevel_contenders()),
        "cloud" => Campaign::grid("cloud")
            .workloads(&berti_traces::cloud::suite())
            .l1(PrefetcherChoice::IpStride)
            .configs(l1d_contenders().into_iter().map(|p| (p, None))),
        _ => return None,
    };
    Some(c.opts(opts).build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_builds_and_resolves() {
        for (name, _) in builtin_campaigns() {
            let c = builtin(name, SimOptions::default()).expect("builtin exists");
            assert!(!c.cells.is_empty(), "{name} has cells");
            for cell in &c.cells {
                assert!(
                    berti_traces::workload_by_name(&cell.workload).is_some(),
                    "{name}: workload `{}` resolves",
                    cell.workload
                );
            }
        }
        assert!(builtin("no-such-campaign", SimOptions::default()).is_none());
    }

    #[test]
    fn quick_campaign_is_the_expected_grid() {
        let c = builtin("quick", SimOptions::default()).expect("exists");
        assert_eq!(c.cells.len(), 4);
        let labels: std::collections::HashSet<String> = c.cells.iter().map(|s| s.label()).collect();
        assert!(labels.contains("ip-stride") && labels.contains("berti"));
    }
}
