//! Built-in campaigns: the paper's evaluation grids, by name.
//!
//! The contender lists here are the single source of truth — the
//! `berti-bench` figure binaries and the `campaign` CLI both build
//! their grids from them.

use berti_sim::{L2PrefetcherChoice, PrefetcherChoice, SimOptions};
use berti_traces::TraceRegistry;

use crate::campaign::Campaign;

/// The L1D prefetchers of Fig. 8/10/11 (the baseline IP-stride is the
/// denominator of every speedup).
pub fn l1d_contenders() -> Vec<PrefetcherChoice> {
    vec![
        PrefetcherChoice::Mlop,
        PrefetcherChoice::Ipcp,
        PrefetcherChoice::Berti,
    ]
}

/// The multi-level combinations of Fig. 12/13 (L1D + L2).
pub fn multilevel_contenders() -> Vec<(PrefetcherChoice, Option<L2PrefetcherChoice>)> {
    vec![
        (PrefetcherChoice::Mlop, Some(L2PrefetcherChoice::Bingo)),
        (PrefetcherChoice::Mlop, Some(L2PrefetcherChoice::SppPpf)),
        (PrefetcherChoice::Ipcp, Some(L2PrefetcherChoice::Ipcp)),
        (PrefetcherChoice::Berti, Some(L2PrefetcherChoice::Bingo)),
        (PrefetcherChoice::Berti, Some(L2PrefetcherChoice::SppPpf)),
    ]
}

/// Names of all built-in campaigns, with a one-line description each.
pub fn builtin_campaigns() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "quick",
            "2 workloads × {ip-stride, berti} smoke grid (4 cells)",
        ),
        (
            "l1d",
            "memory-intensive suite × {ip-stride, mlop, ipcp, berti} (Fig. 8/10/11)",
        ),
        (
            "multilevel",
            "memory-intensive suite × multi-level combinations (Fig. 12/13)",
        ),
        (
            "cloud",
            "CloudSuite-like workloads × {ip-stride, mlop, ipcp, berti} (Sec. IV-G)",
        ),
    ]
}

/// Builds a built-in campaign by name.
pub fn builtin(name: &str, opts: SimOptions) -> Option<Campaign> {
    let c = match name {
        "quick" => Campaign::grid("quick")
            .workload("lbm-like")
            .workload("bfs-kron")
            .l1(PrefetcherChoice::IpStride)
            .l1(PrefetcherChoice::Berti),
        "l1d" => Campaign::grid("l1d")
            .workloads(&berti_traces::memory_intensive_suite())
            .l1(PrefetcherChoice::IpStride)
            .configs(l1d_contenders().into_iter().map(|p| (p, None))),
        "multilevel" => Campaign::grid("multilevel")
            .workloads(&berti_traces::memory_intensive_suite())
            .l1(PrefetcherChoice::IpStride)
            .configs(multilevel_contenders()),
        "cloud" => Campaign::grid("cloud")
            .workloads(&berti_traces::cloud::suite())
            .l1(PrefetcherChoice::IpStride)
            .configs(l1d_contenders().into_iter().map(|p| (p, None))),
        _ => return None,
    };
    Some(c.opts(opts).build())
}

/// Campaigns over the trace files of a `--trace-dir`, with a one-line
/// description each. They resolve against a [`TraceRegistry`] rather
/// than the builtin list, so they only exist when a trace dir is given.
pub fn trace_campaigns() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "traces",
            "every discovered trace × {ip-stride, mlop, ipcp, berti}",
        ),
        (
            "quick-traces",
            "every discovered trace × {ip-stride, berti} smoke grid",
        ),
    ]
}

/// Builds a trace-dir campaign by name over `registry`'s discovered
/// trace files. `None` for unknown names; a campaign with zero cells
/// when the registry has no trace workloads (callers turn that into
/// "no trace files found").
pub fn trace_campaign(name: &str, registry: &TraceRegistry, opts: SimOptions) -> Option<Campaign> {
    let traces: Vec<_> = registry.trace_workloads().cloned().collect();
    let c = match name {
        "traces" => Campaign::grid("traces")
            .workloads(&traces)
            .l1(PrefetcherChoice::IpStride)
            .configs(l1d_contenders().into_iter().map(|p| (p, None))),
        "quick-traces" => Campaign::grid("quick-traces")
            .workloads(&traces)
            .l1(PrefetcherChoice::IpStride)
            .l1(PrefetcherChoice::Berti),
        _ => return None,
    };
    Some(c.opts(opts).build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_builds_and_resolves() {
        for (name, _) in builtin_campaigns() {
            let c = builtin(name, SimOptions::default()).expect("builtin exists");
            assert!(!c.cells.is_empty(), "{name} has cells");
            for cell in &c.cells {
                assert!(
                    berti_traces::workload_by_name(&cell.workload).is_some(),
                    "{name}: workload `{}` resolves",
                    cell.workload
                );
            }
        }
        assert!(builtin("no-such-campaign", SimOptions::default()).is_none());
    }

    #[test]
    fn trace_campaigns_build_over_discovered_files() {
        let dir = std::env::temp_dir().join(format!("berti-trace-camp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let instrs = vec![berti_types::Instr::load(
            berti_types::Ip::new(0x400),
            berti_types::VAddr::new(64),
        )];
        berti_traces::ingest::write_btrc(&dir.join("tiny.btrc"), &instrs).expect("writes");
        let reg = TraceRegistry::with_trace_dir(&dir).expect("scans");

        let c = trace_campaign("quick-traces", &reg, SimOptions::default()).expect("exists");
        assert_eq!(c.cells.len(), 2, "1 trace × 2 prefetchers");
        assert!(c.cells.iter().all(|cell| cell.workload == "tiny"));
        let c = trace_campaign("traces", &reg, SimOptions::default()).expect("exists");
        assert_eq!(c.cells.len(), 4, "1 trace × 4 prefetchers");
        assert!(trace_campaign("no-such", &reg, SimOptions::default()).is_none());

        let empty = TraceRegistry::builtin();
        let c = trace_campaign("traces", &empty, SimOptions::default()).expect("exists");
        assert!(c.cells.is_empty(), "no trace files, no cells");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_campaign_is_the_expected_grid() {
        let c = builtin("quick", SimOptions::default()).expect("exists");
        assert_eq!(c.cells.len(), 4);
        let labels: std::collections::HashSet<String> = c.cells.iter().map(|s| s.label()).collect();
        assert!(labels.contains("ip-stride") && labels.contains("berti"));
    }
}
