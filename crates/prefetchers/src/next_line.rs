//! The next-line prefetcher (IPCP's fallback class and the simplest
//! possible spatial prefetcher): on every demand access, prefetch the
//! following `degree` lines.

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel};

/// The next-line prefetcher.
#[derive(Clone, Copy, Debug)]
pub struct NextLine {
    degree: u32,
    fill_level: FillLevel,
}

impl Default for NextLine {
    fn default() -> Self {
        Self::new(1, FillLevel::L1)
    }
}

impl NextLine {
    /// Creates a next-line prefetcher fetching `degree` lines ahead
    /// into `fill_level`.
    pub fn new(degree: u32, fill_level: FillLevel) -> Self {
        Self { degree, fill_level }
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn storage_bits(&self) -> u64 {
        0 // stateless
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        for k in 1..=self.degree {
            out.push(PrefetchDecision {
                target: ev.line + Delta::new(k as i32),
                fill_level: self.fill_level,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip, VLine};

    #[test]
    fn prefetches_following_lines() {
        let mut p = NextLine::new(2, FillLevel::L1);
        let mut out = Vec::new();
        p.on_access(
            &AccessEvent {
                ip: Ip::new(1),
                line: VLine::new(100),
                at: Cycle::ZERO,
                kind: AccessKind::Load,
                hit: true,
                timely_prefetch_hit: false,
                late_prefetch_hit: false,
                stored_latency: 0,
                mshr_occupancy: 0.0,
            },
            &mut out,
        );
        let targets: Vec<u64> = out.iter().map(|d| d.target.raw()).collect();
        assert_eq!(targets, vec![101, 102]);
    }
}
