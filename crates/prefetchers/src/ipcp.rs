//! Instruction-pointer classifier prefetching (IPCP), the DPC-3 winner
//! (Pakalapati & Panda, ISCA 2020).
//!
//! IPCP classifies each IP into constant stride (CS), complex stride
//! (CPLX), or global stream (GS), and runs a lightweight prefetcher per
//! class, falling back to next-line when unclassified (Sec. II-A).
//! The 128-entry IP table follows Table III.
//!
//! The behavioural properties the paper analyses are reproduced: CS is
//! accurate on regular strides; CPLX covers repeating delta signatures
//! but ignores timeliness; GS prefetches deep along dense regions and
//! produces many useless prefetches on irregular (graph) workloads
//! (Sec. IV-C's bc-5 analysis).

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, Ip, VLine};

/// IP-table entries (Table III).
const IP_ENTRIES: usize = 128;
/// Delta-prediction-table entries for the CPLX class.
const DPT_ENTRIES: usize = 512;
/// Region size in lines for GS detection (2 KB = 32 lines).
const REGION_LINES: u64 = 32;
/// Tracked recent regions.
const REGIONS: usize = 32;
/// Lines touched in a region before its IPs are classified GS.
const GS_DENSITY: u32 = 24;
/// CS prefetch degree.
const CS_DEGREE: i32 = 4;
/// CPLX lookahead depth.
const CPLX_DEPTH: usize = 3;
/// GS prefetch depth.
const GS_DEGREE: i32 = 6;

#[derive(Clone, Copy, Debug)]
struct IpEntry {
    ip: Ip,
    last_line: VLine,
    stride: i32,
    cs_conf: u8,
    signature: u16,
    /// Sticky GS classification with hysteresis.
    gs_conf: u8,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct DptEntry {
    delta: i32,
    conf: u8,
}

#[derive(Clone, Copy, Debug)]
struct Region {
    id: u64,
    /// Bitmap of distinct lines touched.
    footprint: u32,
    /// Net direction: positive = ascending.
    direction: i32,
    last_line: VLine,
    last_use: u64,
    valid: bool,
}

/// The IPCP composite prefetcher.
#[derive(Clone, Debug)]
pub struct Ipcp {
    ips: Vec<IpEntry>,
    dpt: Vec<DptEntry>,
    regions: Vec<Region>,
    /// Streak of regions retired dense: the stream-mode hysteresis.
    gs_streak: u8,
    tick: u64,
    fill_level: FillLevel,
}

impl Default for Ipcp {
    fn default() -> Self {
        Self::new(FillLevel::L1)
    }
}

impl Ipcp {
    /// Creates an IPCP instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        Self {
            ips: vec![
                IpEntry {
                    ip: Ip::default(),
                    last_line: VLine::default(),
                    stride: 0,
                    cs_conf: 0,
                    signature: 0,
                    gs_conf: 0,
                    valid: false,
                };
                IP_ENTRIES
            ],
            dpt: vec![DptEntry::default(); DPT_ENTRIES],
            regions: vec![
                Region {
                    id: 0,
                    footprint: 0,
                    direction: 0,
                    last_line: VLine::default(),
                    last_use: 0,
                    valid: false,
                };
                REGIONS
            ],
            gs_streak: 0,
            tick: 0,
            fill_level,
        }
    }

    #[inline]
    fn ip_slot(ip: Ip) -> usize {
        // Multiplicative hash: code addresses share low/aligned bits,
        // and a modulo index lets a handful of hot IPs alias one slot
        // and evict each other every access.
        ((ip.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize) % IP_ENTRIES
    }

    #[inline]
    fn sig_update(sig: u16, delta: i32) -> u16 {
        (((sig << 1) as i32) ^ (delta & 0x3F)) as u16 & 0x1FF
    }

    /// Updates the region tracker; returns `(stream, direction)` for
    /// the region of `line`. A region is *dense* once it has touched
    /// [`GS_DENSITY`] distinct lines; retiring dense regions builds a
    /// streak that keeps GS mode on across region boundaries (a stream
    /// is dense long before each new region fills up).
    fn touch_region(&mut self, line: VLine) -> (bool, i32) {
        self.tick += 1;
        let tick = self.tick;
        let id = line.raw() / REGION_LINES;
        let slot = match self.regions.iter().position(|r| r.valid && r.id == id) {
            Some(i) => i,
            None => {
                let i = self
                    .regions
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| if r.valid { r.last_use } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                if self.regions[i].valid {
                    let dense = self.regions[i].footprint.count_ones() >= GS_DENSITY;
                    self.gs_streak = if dense {
                        (self.gs_streak + 1).min(4)
                    } else {
                        self.gs_streak.saturating_sub(1)
                    };
                }
                self.regions[i] = Region {
                    id,
                    footprint: 0,
                    direction: 0,
                    last_line: line,
                    last_use: tick,
                    valid: true,
                };
                i
            }
        };
        let r = &mut self.regions[slot];
        r.last_use = tick;
        r.footprint |= 1 << (line.raw() % REGION_LINES);
        let d = (line - r.last_line).raw();
        r.direction += d.signum();
        r.last_line = line;
        let dense = r.footprint.count_ones() >= GS_DENSITY;
        let dir = if r.direction >= 0 { 1 } else { -1 };
        (dense || self.gs_streak >= 2, dir)
    }
}

impl Prefetcher for Ipcp {
    fn name(&self) -> &'static str {
        "ipcp"
    }

    fn storage_bits(&self) -> u64 {
        // IP table: tag 9 + line 24 + stride 7 + conf 2 + sig 9 + gs 2;
        // DPT: delta 7 + conf 2; region tracker.
        IP_ENTRIES as u64 * (9 + 24 + 7 + 2 + 9 + 2)
            + DPT_ENTRIES as u64 * 9
            + REGIONS as u64 * (30 + 6 + 6 + 24 + 5)
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        let (dense, direction) = self.touch_region(ev.line);
        let slot = Self::ip_slot(ev.ip);
        let fill = self.fill_level;
        // GS class: the *global* stream tracker fires on dense regions
        // independently of per-IP state — hundreds of interleaved IPs
        // (CactuBSSN) thrash the IP table, yet their combined stream is
        // exactly what GS exists to cover.
        if dense {
            for k in 1..=GS_DEGREE {
                out.push(PrefetchDecision {
                    target: ev.line + Delta::new(direction * k),
                    fill_level: if k <= 2 { fill } else { FillLevel::L2 },
                });
            }
            return;
        }
        if !self.ips[slot].valid || self.ips[slot].ip != ev.ip {
            self.ips[slot] = IpEntry {
                ip: ev.ip,
                last_line: ev.line,
                stride: 0,
                cs_conf: 0,
                signature: 0,
                gs_conf: if dense { 1 } else { 0 },
                valid: true,
            };
            return;
        }
        let (stride, old_sig, cs_conf, gs_conf) = {
            let e = &mut self.ips[slot];
            let delta = (ev.line - e.last_line).raw();
            if delta == 0 {
                return;
            }
            // CS training.
            if delta == e.stride {
                e.cs_conf = (e.cs_conf + 1).min(3);
            } else {
                e.cs_conf = e.cs_conf.saturating_sub(1);
                if e.cs_conf == 0 {
                    e.stride = delta;
                }
            }
            // GS hysteresis.
            if dense {
                e.gs_conf = (e.gs_conf + 1).min(3);
            } else {
                e.gs_conf = e.gs_conf.saturating_sub(1);
            }
            // CPLX training: DPT[old signature] learns the new delta.
            let old_sig = e.signature;
            let d = &mut self.dpt[old_sig as usize % DPT_ENTRIES];
            if d.delta == delta {
                d.conf = (d.conf + 1).min(3);
            } else {
                d.conf = d.conf.saturating_sub(1);
                if d.conf == 0 {
                    d.delta = delta;
                }
            }
            e.signature = Self::sig_update(old_sig, delta);
            e.last_line = ev.line;
            (e.stride, e.signature, e.cs_conf, e.gs_conf)
        };
        let _ = (old_sig, gs_conf);
        // Classification priority: GS (handled above) > CS > CPLX > NL.
        if cs_conf >= 2 && stride != 0 {
            for k in 1..=CS_DEGREE {
                out.push(PrefetchDecision {
                    target: ev.line + Delta::new(stride * k),
                    fill_level: fill,
                });
            }
        } else {
            // CPLX: follow the signature chain while confident.
            let mut sig = self.ips[slot].signature;
            let mut line = ev.line;
            let mut any = false;
            for _ in 0..CPLX_DEPTH {
                let d = self.dpt[sig as usize % DPT_ENTRIES];
                if d.conf < 2 || d.delta == 0 {
                    break;
                }
                line = line + Delta::new(d.delta);
                out.push(PrefetchDecision {
                    target: line,
                    fill_level: fill,
                });
                sig = Self::sig_update(sig, d.delta);
                any = true;
            }
            if !any && !ev.hit {
                // NL class: next line on a miss.
                out.push(PrefetchDecision {
                    target: ev.line + Delta::new(1),
                    fill_level: fill,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle};

    fn ev(ip: u64, line: u64, hit: bool) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(ip),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn cs_class_prefetches_constant_strides() {
        let mut p = Ipcp::default();
        let mut out = Vec::new();
        // Spread lines across regions so GS never triggers.
        for i in 0..6u64 {
            out.clear();
            p.on_access(&ev(1, 1000 + 40 * i, false), &mut out);
        }
        let targets: Vec<u64> = out.iter().map(|d| d.target.raw()).collect();
        assert_eq!(targets, vec![1240, 1280, 1320, 1360], "degree-4 CS");
    }

    #[test]
    fn cplx_class_covers_alternating_strides() {
        // The lbm pattern +1,+2,+1,+2 (Sec. II-B): CS fails, CPLX learns
        // the signature chain.
        let mut p = Ipcp::default();
        let mut out = Vec::new();
        let mut line = 50_000u64;
        let mut covered = false;
        for i in 0..400 {
            out.clear();
            line += if i % 2 == 0 { 1 } else { 2 };
            p.on_access(&ev(7, line, false), &mut out);
            let next = line + if i % 2 == 0 { 2 } else { 1 };
            if out.iter().any(|d| d.target.raw() == next) {
                covered = true;
            }
        }
        assert!(covered, "CPLX must eventually predict the alternation");
    }

    #[test]
    fn gs_class_floods_dense_regions() {
        let mut p = Ipcp::default();
        let mut out = Vec::new();
        // One IP sweeps dense regions line by line; inside the dense
        // tail of a region the GS class must fire at full depth.
        let mut max_burst = 0;
        for i in 0..64u64 {
            out.clear();
            p.on_access(&ev(9, 10_000 + i, false), &mut out);
            max_burst = max_burst.max(out.len());
        }
        assert!(
            max_burst >= GS_DEGREE as usize,
            "dense sweep must classify GS and prefetch deep: {max_burst}"
        );
    }

    #[test]
    fn nl_fallback_on_unclassified_miss() {
        let mut p = Ipcp::default();
        let mut out = Vec::new();
        // Two random accesses by a fresh IP: second one has no class.
        p.on_access(&ev(11, 7_000, false), &mut out);
        p.on_access(&ev(11, 90_000, false), &mut out);
        assert!(out.iter().any(|d| d.target.raw() == 90_001));
    }

    #[test]
    fn storage_is_below_1kb() {
        // Table III / Fig. 7: IPCP has the smallest budget (~0.9 KB).
        let p = Ipcp::default();
        assert!(p.storage_bits() as f64 / 8.0 / 1024.0 < 2.0);
    }
}
