//! The Bingo spatial data prefetcher (HPCA 2019): associates the
//! footprint of a 2 KB region with both a *long* event (PC ⊕ trigger
//! address) and a *short* event (PC ⊕ trigger offset) in a single
//! pattern history table, looking the long event up first (Sec. II-A).
//!
//! Table III: 2 KB region, 64-entry filter table, 128-entry
//! accumulation table, 4 K-entry PHT.

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine};

/// Region size in cache lines (2 KB).
const REGION_LINES: u64 = 32;
/// Filter-table entries (regions with exactly one access so far).
const FT_ENTRIES: usize = 64;
/// Accumulation-table entries (regions being recorded).
const AT_ENTRIES: usize = 128;
/// Pattern-history-table entries.
const PHT_ENTRIES: usize = 4096;

#[derive(Clone, Copy, Debug, Default)]
struct FtEntry {
    region: u64,
    pc: u64,
    trigger_offset: u32,
    last_use: u64,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct AtEntry {
    region: u64,
    pc: u64,
    trigger_offset: u32,
    footprint: u32,
    last_use: u64,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct PhtEntry {
    key: u64,
    footprint: u32,
    valid: bool,
}

/// The Bingo prefetcher.
#[derive(Clone, Debug)]
pub struct Bingo {
    ft: Vec<FtEntry>,
    at: Vec<AtEntry>,
    pht: Vec<PhtEntry>,
    tick: u64,
    fill_level: FillLevel,
}

impl Default for Bingo {
    fn default() -> Self {
        Self::new(FillLevel::L2)
    }
}

impl Bingo {
    /// Creates a Bingo instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        Self {
            ft: vec![FtEntry::default(); FT_ENTRIES],
            at: vec![AtEntry::default(); AT_ENTRIES],
            pht: vec![PhtEntry::default(); PHT_ENTRIES],
            tick: 0,
            fill_level,
        }
    }

    #[inline]
    fn long_key(pc: u64, line: VLine) -> u64 {
        (pc << 20) ^ line.raw() ^ 0x5851_f42d
    }

    #[inline]
    fn short_key(pc: u64, offset: u32) -> u64 {
        (pc << 6) ^ u64::from(offset) ^ 0x9e37_79b9
    }

    fn pht_store(&mut self, key: u64, footprint: u32) {
        let slot = (key % PHT_ENTRIES as u64) as usize;
        self.pht[slot] = PhtEntry {
            key,
            footprint,
            valid: true,
        };
    }

    fn pht_lookup(&self, key: u64) -> Option<u32> {
        let e = &self.pht[(key % PHT_ENTRIES as u64) as usize];
        (e.valid && e.key == key).then_some(e.footprint)
    }

    /// Evicts an AT entry into the PHT under both event keys.
    fn retire_at(&mut self, e: AtEntry) {
        let region_base = VLine::new(e.region * REGION_LINES);
        let trigger_line = VLine::new(region_base.raw() + u64::from(e.trigger_offset));
        self.pht_store(Self::long_key(e.pc, trigger_line), e.footprint);
        self.pht_store(Self::short_key(e.pc, e.trigger_offset), e.footprint);
    }
}

impl Prefetcher for Bingo {
    fn name(&self) -> &'static str {
        "bingo"
    }

    fn storage_bits(&self) -> u64 {
        // FT: region tag 30 + pc 16 + offset 5; AT adds the 32-bit
        // footprint; PHT: key tag 16 + footprint 32.
        FT_ENTRIES as u64 * (30 + 16 + 5 + 5)
            + AT_ENTRIES as u64 * (30 + 16 + 5 + 32 + 5)
            + PHT_ENTRIES as u64 * (16 + 32)
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let region = ev.line.raw() / REGION_LINES;
        let offset = (ev.line.raw() % REGION_LINES) as u32;
        let pc = ev.ip.raw();

        // Already accumulating? Record the access.
        if let Some(i) = self.at.iter().position(|e| e.valid && e.region == region) {
            let e = &mut self.at[i];
            e.footprint |= 1 << offset;
            e.last_use = tick;
            return;
        }
        // Second access to a filtered region: promote FT -> AT.
        if let Some(i) = self.ft.iter().position(|e| e.valid && e.region == region) {
            let f = self.ft[i];
            self.ft[i].valid = false;
            let slot = self
                .at
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
                .map(|(i, _)| i)
                .expect("nonempty");
            if self.at[slot].valid {
                let old = self.at[slot];
                self.retire_at(old);
            }
            self.at[slot] = AtEntry {
                region,
                pc: f.pc,
                trigger_offset: f.trigger_offset,
                footprint: (1 << f.trigger_offset) | (1 << offset),
                last_use: tick,
                valid: true,
            };
            return;
        }
        // Trigger access to an untracked region: predict, then track.
        let footprint = self
            .pht_lookup(Self::long_key(pc, ev.line))
            .or_else(|| self.pht_lookup(Self::short_key(pc, offset)));
        if let Some(fp) = footprint {
            let region_base = region * REGION_LINES;
            for bit in 0..REGION_LINES as u32 {
                if bit != offset && fp & (1 << bit) != 0 {
                    let target = VLine::new(region_base + u64::from(bit));
                    out.push(PrefetchDecision {
                        target: target + Delta::ZERO,
                        fill_level: self.fill_level,
                    });
                }
            }
        }
        let slot = self
            .ft
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("nonempty");
        self.ft[slot] = FtEntry {
            region,
            pc,
            trigger_offset: offset,
            last_use: tick,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn ev(ip: u64, line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(ip),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    /// Touch a region with a fixed sparse footprint pattern.
    fn touch_region(p: &mut Bingo, region: u64, pattern: &[u64], out: &mut Vec<PrefetchDecision>) {
        for &o in pattern {
            p.on_access(&ev(0x400, region * REGION_LINES + o), out);
        }
    }

    #[test]
    fn replays_learned_footprint_on_matching_trigger() {
        let mut p = Bingo::default();
        let mut out = Vec::new();
        let pattern = [0u64, 3, 7, 12, 20];
        // Record the pattern in more regions than the AT can hold, so
        // evicted entries retire their footprints into the PHT.
        for r in 0..200 {
            touch_region(&mut p, 100 + r, &pattern, &mut out);
        }
        out.clear();
        // New region, same PC and trigger offset: the short event hits.
        p.on_access(&ev(0x400, 5000 * REGION_LINES), &mut out);
        let offsets: Vec<u64> = out.iter().map(|d| d.target.raw() % REGION_LINES).collect();
        assert!(
            offsets.contains(&3) && offsets.contains(&7) && offsets.contains(&20),
            "footprint replay missing lines: {offsets:?}"
        );
    }

    #[test]
    fn no_prediction_without_history() {
        let mut p = Bingo::default();
        let mut out = Vec::new();
        p.on_access(&ev(0x400, 12345), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn different_pc_does_not_match() {
        let mut p = Bingo::default();
        let mut out = Vec::new();
        for r in 0..40 {
            touch_region(&mut p, 200 + r, &[0, 5, 9], &mut out);
        }
        out.clear();
        p.on_access(&ev(0x999, 8000 * REGION_LINES), &mut out);
        assert!(out.is_empty(), "foreign PC must not replay the footprint");
    }
}
