//! The IP-stride prefetcher: the paper's *baseline* L1D prefetcher
//! (Table II: "24-entry, fully associative IP-stride prefetcher",
//! modelled after Intel's smart-memory-access stride prefetcher).
//!
//! Each entry tracks the last line touched by an IP, the last observed
//! stride, and a 2-bit confidence counter. Two consecutive identical
//! strides arm the entry; armed entries prefetch `degree` strides ahead
//! into the L1D.

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, Ip, VLine};

/// Confidence needed before prefetching (two matching strides).
const CONF_ARM: u8 = 2;
/// Confidence ceiling.
const CONF_MAX: u8 = 3;

#[derive(Clone, Copy, Debug)]
struct Entry {
    ip: Ip,
    last_line: VLine,
    stride: Delta,
    confidence: u8,
    last_use: u64,
    valid: bool,
}

/// The IP-stride prefetcher.
#[derive(Clone, Debug)]
pub struct IpStride {
    entries: Vec<Entry>,
    degree: u32,
    tick: u64,
}

impl Default for IpStride {
    fn default() -> Self {
        Self::new(24, 2)
    }
}

impl IpStride {
    /// Creates an IP-stride prefetcher with `entries` fully-associative
    /// entries and `degree` prefetches per armed access.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize, degree: u32) -> Self {
        assert!(entries > 0);
        Self {
            entries: vec![
                Entry {
                    ip: Ip::default(),
                    last_line: VLine::default(),
                    stride: Delta::ZERO,
                    confidence: 0,
                    last_use: 0,
                    valid: false,
                };
                entries
            ],
            degree,
            tick: 0,
        }
    }
}

impl Prefetcher for IpStride {
    fn name(&self) -> &'static str {
        "ip-stride"
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: ~16-bit IP tag + 24-bit line + 13-bit stride +
        // 2-bit confidence + 5-bit LRU.
        self.entries.len() as u64 * (16 + 24 + 13 + 2 + 5)
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let degree = self.degree;
        // Find the IP's entry or a victim (LRU).
        let slot = match self.entries.iter().position(|e| e.valid && e.ip == ev.ip) {
            Some(i) => i,
            None => {
                let i = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonempty table");
                self.entries[i] = Entry {
                    ip: ev.ip,
                    last_line: ev.line,
                    stride: Delta::ZERO,
                    confidence: 0,
                    last_use: tick,
                    valid: true,
                };
                return;
            }
        };
        let e = &mut self.entries[slot];
        e.last_use = tick;
        let stride = ev.line - e.last_line;
        if stride == Delta::ZERO {
            return; // same line: no stride information
        }
        if stride == e.stride {
            e.confidence = (e.confidence + 1).min(CONF_MAX);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = stride;
            }
        }
        e.last_line = ev.line;
        if e.confidence >= CONF_ARM && e.stride != Delta::ZERO {
            let s = e.stride;
            for k in 1..=degree {
                let target = ev.line + Delta::new(s.raw() * k as i32);
                out.push(PrefetchDecision {
                    target,
                    fill_level: FillLevel::L1,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle};

    fn ev(ip: u64, line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(ip),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn constant_stride_arms_after_two_confirmations() {
        let mut p = IpStride::default();
        let mut out = Vec::new();
        for i in 0..3 {
            p.on_access(&ev(1, 100 + 4 * i), &mut out);
            assert!(out.is_empty(), "not armed yet at access {i}");
        }
        p.on_access(&ev(1, 112), &mut out);
        let targets: Vec<u64> = out.iter().map(|d| d.target.raw()).collect();
        assert_eq!(targets, vec![116, 120]);
    }

    #[test]
    fn alternating_strides_never_arm() {
        // The lbm pattern from Sec. II-B: +1, +2, +1, +2 ... IP-stride
        // must provide zero coverage.
        let mut p = IpStride::default();
        let mut out = Vec::new();
        let mut line = 100;
        for i in 0..40 {
            line += if i % 2 == 0 { 1 } else { 2 };
            p.on_access(&ev(1, line), &mut out);
        }
        assert!(out.is_empty(), "alternating strides must not arm");
    }

    #[test]
    fn per_ip_independence() {
        let mut p = IpStride::default();
        let mut out = Vec::new();
        // Interleave two IPs with different strides.
        for i in 0..6 {
            p.on_access(&ev(1, 100 + 2 * i), &mut out);
            p.on_access(&ev(2, 9000 - 3 * i), &mut out);
        }
        let targets: Vec<i64> = out.iter().map(|d| d.target.raw() as i64).collect();
        assert!(targets.iter().any(|&t| t > 100 && t < 200), "+2 stream");
        assert!(targets.iter().any(|&t| t < 9000), "-3 stream");
    }

    #[test]
    fn lru_replacement_under_ip_pressure() {
        let mut p = IpStride::new(2, 2);
        let mut out = Vec::new();
        for i in 0..4 {
            p.on_access(&ev(1, 100 + i), &mut out);
            p.on_access(&ev(2, 200 + i), &mut out);
        }
        assert!(!out.is_empty(), "both IPs tracked with 2 entries");
        out.clear();
        // A third IP evicts the LRU; IP 1 must re-train afterwards.
        p.on_access(&ev(3, 500), &mut out);
        p.on_access(&ev(1, 104), &mut out);
        p.on_access(&ev(1, 105), &mut out);
        // Re-learns within a few accesses.
        p.on_access(&ev(1, 106), &mut out);
        p.on_access(&ev(1, 107), &mut out);
        assert!(out.iter().any(|d| d.target.raw() >= 108));
    }

    #[test]
    fn rfo_trains_too() {
        let mut p = IpStride::default();
        let mut out = Vec::new();
        for i in 0..5 {
            let mut e = ev(1, 100 + i);
            e.kind = AccessKind::Rfo;
            p.on_access(&e, &mut out);
        }
        assert!(!out.is_empty());
    }

    #[test]
    fn storage_is_small() {
        let p = IpStride::default();
        assert!(p.storage_bits() < 8 * 1024 * 8, "well under 1 KB");
    }
}
