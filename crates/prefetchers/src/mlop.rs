//! Multi-lookahead offset prefetching (MLOP), third place at DPC-3
//! (Shakerinava et al.) — BOP extended with one best offset *per
//! lookahead level*, still global (context-agnostic), which is exactly
//! the property Berti's motivation targets (Sec. II-A: "Both BOP and
//! MLOP treat the demand addresses in isolation").
//!
//! This reproduction keeps MLOP's structure: a 128-entry access-map
//! table of per-zone access histories, score matrices indexed by
//! (lookahead, offset), a 500-update evaluation round (Table III:
//! "128-entry AMT, 500-update, 16-degree"), and per-round selection of
//! the best offset for each of the 16 lookahead levels.

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine, Vpn};

/// Offsets range over [-OFFSET_RANGE, +OFFSET_RANGE].
const OFFSET_RANGE: i32 = 63;
/// Number of lookahead levels (the prefetch degree, Table III).
const LOOKAHEADS: usize = 16;
/// Updates per evaluation round (Table III).
const ROUND_UPDATES: u32 = 500;
/// Access-map-table entries (Table III).
const AMT_ENTRIES: usize = 128;
/// Minimum score (as a fraction of round updates) for an offset to be
/// selected at its lookahead level.
const SELECT_FRACTION: f64 = 0.30;
/// Zone access-history depth used to score lookaheads.
const ZONE_HISTORY: usize = LOOKAHEADS;

#[derive(Clone, Debug)]
struct Zone {
    page: Vpn,
    history: Vec<VLine>,
    last_use: u64,
    valid: bool,
}

/// The MLOP prefetcher.
#[derive(Clone, Debug)]
pub struct Mlop {
    zones: Vec<Zone>,
    /// scores[lookahead][offset + OFFSET_RANGE].
    scores: Vec<Vec<u32>>,
    updates: u32,
    /// Chosen offset per lookahead (None = not selected this round).
    chosen: Vec<Option<i32>>,
    tick: u64,
    fill_level: FillLevel,
}

impl Default for Mlop {
    fn default() -> Self {
        Self::new(FillLevel::L1)
    }
}

impl Mlop {
    /// Creates an MLOP instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        Self {
            zones: vec![
                Zone {
                    page: Vpn::default(),
                    history: Vec::new(),
                    last_use: 0,
                    valid: false,
                };
                AMT_ENTRIES
            ],
            scores: vec![vec![0; (2 * OFFSET_RANGE + 1) as usize]; LOOKAHEADS],
            updates: 0,
            chosen: vec![None; LOOKAHEADS],
            tick: 0,
            fill_level,
        }
    }

    /// The offsets selected in the last round, per lookahead level.
    pub fn selected_offsets(&self) -> &[Option<i32>] {
        &self.chosen
    }

    fn zone_slot(&mut self, page: Vpn) -> usize {
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.zones.iter().position(|z| z.valid && z.page == page) {
            self.zones[i].last_use = tick;
            return i;
        }
        let i = self
            .zones
            .iter()
            .enumerate()
            .min_by_key(|(_, z)| if z.valid { z.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("nonempty");
        self.zones[i] = Zone {
            page,
            history: Vec::new(),
            last_use: tick,
            valid: true,
        };
        i
    }

    fn end_round(&mut self) {
        let threshold = (f64::from(ROUND_UPDATES) * SELECT_FRACTION) as u32;
        for (k, row) in self.scores.iter_mut().enumerate() {
            let (best_idx, &best) = row
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .expect("nonempty row");
            let off = best_idx as i32 - OFFSET_RANGE;
            self.chosen[k] = (best >= threshold && off != 0).then_some(off);
            row.fill(0);
        }
        self.updates = 0;
    }
}

impl Prefetcher for Mlop {
    fn name(&self) -> &'static str {
        "mlop"
    }

    fn storage_bits(&self) -> u64 {
        // AMT: tag (36) + history (16 × 24) per entry; score matrices:
        // 16 × 127 × 9 bits; chosen registers.
        AMT_ENTRIES as u64 * (36 + (ZONE_HISTORY as u64 * 24))
            + (LOOKAHEADS as u64 * (2 * OFFSET_RANGE as u64 + 1) * 9)
            + LOOKAHEADS as u64 * 8
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        let page = ev.line.page();
        let slot = self.zone_slot(page);
        // Score: for each lookahead j, the offset from the access j
        // steps back in this zone to the current line would have
        // covered this access with lookahead j.
        {
            let z = &self.zones[slot];
            let n = z.history.len();
            for j in 1..=n.min(LOOKAHEADS) {
                let past = z.history[n - j];
                let off = (ev.line - past).raw();
                if off != 0 && off.abs() <= OFFSET_RANGE {
                    self.scores[j - 1][(off + OFFSET_RANGE) as usize] += 1;
                }
            }
        }
        {
            let z = &mut self.zones[slot];
            z.history.push(ev.line);
            if z.history.len() > ZONE_HISTORY {
                z.history.remove(0);
            }
        }
        self.updates += 1;
        if self.updates >= ROUND_UPDATES {
            self.end_round();
        }
        // Prediction: one prefetch per selected lookahead offset,
        // deduplicated. Near lookaheads fill the host level; far ones
        // fill the L2, as MLOP's multi-level mapping does — far
        // prefetches must not monopolize the L1D MSHRs.
        let mut emitted: Vec<i32> = Vec::with_capacity(LOOKAHEADS);
        for (k, off) in self
            .chosen
            .iter()
            .enumerate()
            .filter_map(|(k, o)| o.map(|o| (k, o)))
        {
            if emitted.contains(&off) {
                continue;
            }
            emitted.push(off);
            out.push(PrefetchDecision {
                target: ev.line + Delta::new(off),
                fill_level: if k < 2 {
                    self.fill_level
                } else {
                    FillLevel::L2
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn ev(line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(1),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn learns_multiple_lookaheads_of_a_stride() {
        let mut p = Mlop::default();
        let mut out = Vec::new();
        // +1 stride within one page region, long enough for a round.
        for i in 0..600u64 {
            p.on_access(&ev(4096 + (i % 48)), &mut out);
        }
        let sel = p.selected_offsets();
        // Lookahead j should select offset ≈ j for a +1 stride.
        assert!(sel.iter().flatten().count() >= 4, "selected: {sel:?}");
        assert_eq!(sel[0], Some(1));
        assert_eq!(sel[1], Some(2));
    }

    #[test]
    fn prefetches_after_a_round() {
        let mut p = Mlop::default();
        let mut out = Vec::new();
        for i in 0..600u64 {
            out.clear();
            p.on_access(&ev(8192 + (i % 40)), &mut out);
        }
        assert!(!out.is_empty());
        // Offsets must be deduplicated.
        let mut ts: Vec<u64> = out.iter().map(|d| d.target.raw()).collect();
        let before = ts.len();
        ts.dedup();
        assert_eq!(ts.len(), before);
    }

    #[test]
    fn random_zone_traffic_selects_nothing() {
        let mut p = Mlop::default();
        let mut out = Vec::new();
        let mut x = 99u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            p.on_access(&ev(x % (1 << 30)), &mut out);
        }
        assert!(
            p.selected_offsets().iter().flatten().count() == 0,
            "random traffic must not cross the selection threshold"
        );
    }

    #[test]
    fn interleaved_strides_pick_one_global_offset_per_lookahead() {
        // Two pages with different strides interleaved: each lookahead
        // still has exactly one global offset — the MLOP weakness
        // Fig. 9's mcf/GAP analysis highlights.
        let mut p = Mlop::default();
        let mut out = Vec::new();
        for i in 0..300u64 {
            p.on_access(&ev(4096 + (2 * i) % 60), &mut out); // +2 stride
            p.on_access(&ev(81920 + (3 * i) % 60), &mut out); // +3 stride
        }
        // Only one offset per lookahead even though two streams exist.
        assert!(p.selected_offsets().iter().flatten().count() <= LOOKAHEADS);
    }
}
