//! Variable-length delta prefetching (VLDP, MICRO 2015): per-page
//! delta histories feeding multiple delta-prediction tables keyed by
//! increasingly long histories; the longest matching history wins
//! (Sec. II-A).

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine, Vpn};

/// Delta-history-buffer entries (tracked pages).
const DHB_ENTRIES: usize = 16;
/// Delta-prediction-table entries per history length.
const DPT_ENTRIES: usize = 64;
/// Maximum history length (number of DPTs).
const MAX_HISTORY: usize = 3;
/// Prefetch chain depth.
const DEGREE: usize = 4;

#[derive(Clone, Copy, Debug)]
struct DhbEntry {
    page: Vpn,
    last_line: VLine,
    deltas: [i32; MAX_HISTORY],
    num_deltas: usize,
    last_use: u64,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct DptEntry {
    key: u64,
    next: i32,
    conf: u8,
    valid: bool,
}

/// The VLDP prefetcher.
#[derive(Clone, Debug)]
pub struct Vldp {
    dhb: Vec<DhbEntry>,
    /// One table per history length (1-delta, 2-delta, 3-delta keys).
    dpts: Vec<Vec<DptEntry>>,
    tick: u64,
    fill_level: FillLevel,
}

impl Default for Vldp {
    fn default() -> Self {
        Self::new(FillLevel::L2)
    }
}

impl Vldp {
    /// Creates a VLDP instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        Self {
            dhb: vec![
                DhbEntry {
                    page: Vpn::default(),
                    last_line: VLine::default(),
                    deltas: [0; MAX_HISTORY],
                    num_deltas: 0,
                    last_use: 0,
                    valid: false,
                };
                DHB_ENTRIES
            ],
            dpts: vec![vec![DptEntry::default(); DPT_ENTRIES]; MAX_HISTORY],
            tick: 0,
            fill_level,
        }
    }

    fn key_of(history: &[i32]) -> u64 {
        let mut k = 0xcbf29ce484222325u64;
        for &d in history {
            k ^= (d as u32) as u64;
            k = k.wrapping_mul(0x100000001b3);
        }
        k
    }

    fn dpt_train(&mut self, len: usize, history: &[i32], next: i32) {
        let key = Self::key_of(history);
        let slot = (key % DPT_ENTRIES as u64) as usize;
        let e = &mut self.dpts[len - 1][slot];
        if e.valid && e.key == key && e.next == next {
            e.conf = (e.conf + 1).min(3);
        } else if e.valid && e.key == key {
            e.conf = e.conf.saturating_sub(1);
            if e.conf == 0 {
                e.next = next;
            }
        } else {
            *e = DptEntry {
                key,
                next,
                conf: 1,
                valid: true,
            };
        }
    }

    /// Longest-match prediction for `history`: returns the next delta.
    fn dpt_predict(&self, history: &[i32]) -> Option<i32> {
        for len in (1..=history.len().min(MAX_HISTORY)).rev() {
            let h = &history[history.len() - len..];
            let key = Self::key_of(h);
            let e = &self.dpts[len - 1][(key % DPT_ENTRIES as u64) as usize];
            if e.valid && e.key == key && e.conf >= 2 {
                return Some(e.next);
            }
        }
        None
    }
}

impl Prefetcher for Vldp {
    fn name(&self) -> &'static str {
        "vldp"
    }

    fn storage_bits(&self) -> u64 {
        DHB_ENTRIES as u64 * (36 + 24 + MAX_HISTORY as u64 * 13 + 7)
            + (MAX_HISTORY * DPT_ENTRIES) as u64 * (16 + 13 + 2)
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let page = ev.line.page();
        let slot = match self.dhb.iter().position(|e| e.valid && e.page == page) {
            Some(i) => i,
            None => {
                let i = self
                    .dhb
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                self.dhb[i] = DhbEntry {
                    page,
                    last_line: ev.line,
                    deltas: [0; MAX_HISTORY],
                    num_deltas: 0,
                    last_use: tick,
                    valid: true,
                };
                return;
            }
        };
        let (history, n) = {
            let e = &mut self.dhb[slot];
            e.last_use = tick;
            let delta = (ev.line - e.last_line).raw();
            if delta == 0 {
                return;
            }
            e.last_line = ev.line;
            let (hist, n) = (e.deltas, e.num_deltas);
            // Shift the new delta in.
            e.deltas.rotate_right(1);
            e.deltas[0] = delta;
            e.num_deltas = (e.num_deltas + 1).min(MAX_HISTORY);
            // Train each history length against the observed delta.
            (hist, n)
        };
        let delta = self.dhb[slot].deltas[0];
        for len in 1..=n.min(MAX_HISTORY) {
            // history, oldest..newest order for the key.
            let mut h: Vec<i32> = history[..len].to_vec();
            h.reverse();
            self.dpt_train(len, &h, delta);
        }
        // Predict a chain from the updated history.
        let e = &self.dhb[slot];
        let mut hist: Vec<i32> = e.deltas[..e.num_deltas].to_vec();
        hist.reverse(); // oldest..newest
        let mut line = ev.line;
        for _ in 0..DEGREE {
            let Some(next) = self.dpt_predict(&hist) else {
                break;
            };
            line = line + Delta::new(next);
            out.push(PrefetchDecision {
                target: line,
                fill_level: self.fill_level,
            });
            hist.push(next);
            if hist.len() > MAX_HISTORY {
                hist.remove(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn ev(line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(1),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn learns_constant_delta_chain() {
        let mut p = Vldp::default();
        let mut out = Vec::new();
        let base = 64 * 100;
        for i in 0..20u64 {
            out.clear();
            p.on_access(&ev(base + i), &mut out);
        }
        let targets: Vec<u64> = out.iter().map(|d| d.target.raw()).collect();
        assert_eq!(targets, vec![base + 20, base + 21, base + 22, base + 23]);
    }

    #[test]
    fn longer_history_disambiguates_alternation() {
        // +1,+2,+1,+2: after +1 the next is +2 and vice versa; a
        // 1-delta history is ambiguous only if both follow the same
        // delta — here it isn't, so VLDP covers it.
        let mut p = Vldp::default();
        let mut out = Vec::new();
        let mut line = 64 * 500;
        let mut hits = 0;
        for i in 0..60 {
            out.clear();
            line += if i % 2 == 0 { 1 } else { 2 };
            p.on_access(&ev(line), &mut out);
            let next = line + if i % 2 == 0 { 2 } else { 1 };
            if out.iter().any(|d| d.target.raw() == next) {
                hits += 1;
            }
        }
        assert!(hits > 20, "only covered {hits} of 60");
    }

    #[test]
    fn new_page_inherits_nothing_but_tables_transfer() {
        let mut p = Vldp::default();
        let mut out = Vec::new();
        // Train +1 on page A.
        for i in 0..20u64 {
            p.on_access(&ev(64 * 100 + i), &mut out);
        }
        out.clear();
        // Page B: after two +1 deltas the shared DPT predicts +1.
        for i in 0..4u64 {
            out.clear();
            p.on_access(&ev(64 * 900 + i), &mut out);
        }
        assert!(
            out.iter().any(|d| d.target.raw() == 64 * 900 + 4),
            "cross-page pattern transfer through the DPTs"
        );
    }
}
