//! Baseline hardware data prefetchers evaluated against Berti in the
//! paper (Secs. II-A and IV, Table III).
//!
//! All prefetchers implement [`berti_mem::Prefetcher`] and can be
//! hosted at the L1D (training on virtual lines) or at the L2
//! (training on physical lines):
//!
//! | Prefetcher | Paper role | Module |
//! |---|---|---|
//! | IP-stride | the *baseline* L1D prefetcher (Table II) | [`ip_stride`] |
//! | Next-line | IPCP's fallback class | [`next_line`] |
//! | Stream | classic ascending/descending streams | [`stream`] |
//! | BOP | best-offset prefetching, DPC-2 winner | [`bop`] |
//! | MLOP | multi-lookahead offset prefetching, DPC-3 3rd | [`mlop`] |
//! | IPCP | instruction-pointer classifier, DPC-3 winner | [`ipcp`] |
//! | VLDP | variable-length delta prefetcher | [`vldp`] |
//! | SPP / SPP-PPF | signature-path + perceptron filter | [`spp`] |
//! | Bingo | spatial footprints over 2 KB regions | [`bingo`] |
//! | SMS | classic spatial memory streaming | [`sms`] |
//! | MISB | managed irregular stream buffer (temporal) | [`misb`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bingo;
pub mod bop;
pub mod ip_stride;
pub mod ipcp;
pub mod misb;
pub mod mlop;
pub mod next_line;
pub mod sms;
pub mod spp;
pub mod stream;
pub mod vldp;

pub use bingo::Bingo;
pub use bop::BestOffset;
pub use ip_stride::IpStride;
pub use ipcp::Ipcp;
pub use misb::Misb;
pub use mlop::Mlop;
pub use next_line::NextLine;
pub use sms::Sms;
pub use spp::{Spp, SppPpf};
pub use stream::StreamPrefetcher;
pub use vldp::Vldp;
