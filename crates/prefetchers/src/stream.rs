//! A classic stream prefetcher: detects ascending or descending
//! sequences of misses within a region and runs ahead of them
//! (Sec. V cites stream prefetchers as deployed in commercial parts).

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine, Vpn};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Unknown,
    Up,
    Down,
}

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    page: Vpn,
    last_line: VLine,
    direction: Direction,
    confidence: u8,
    last_use: u64,
    valid: bool,
}

/// The stream prefetcher.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    entries: Vec<StreamEntry>,
    degree: u32,
    tick: u64,
}

impl Default for StreamPrefetcher {
    fn default() -> Self {
        Self::new(16, 4)
    }
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher tracking `streams` concurrent
    /// streams with `degree` lines of run-ahead.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(streams: usize, degree: u32) -> Self {
        assert!(streams > 0);
        Self {
            entries: vec![
                StreamEntry {
                    page: Vpn::default(),
                    last_line: VLine::default(),
                    direction: Direction::Unknown,
                    confidence: 0,
                    last_use: 0,
                    valid: false,
                };
                streams
            ],
            degree,
            tick: 0,
        }
    }
}

impl Prefetcher for StreamPrefetcher {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * (36 + 24 + 2 + 2 + 5)
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let page = ev.line.page();
        let slot = match self.entries.iter().position(|e| e.valid && e.page == page) {
            Some(i) => i,
            None => {
                let i = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                self.entries[i] = StreamEntry {
                    page,
                    last_line: ev.line,
                    direction: Direction::Unknown,
                    confidence: 0,
                    last_use: tick,
                    valid: true,
                };
                return;
            }
        };
        let e = &mut self.entries[slot];
        e.last_use = tick;
        let d = (ev.line - e.last_line).raw();
        e.last_line = ev.line;
        let dir = match d {
            0 => return,
            d if d > 0 => Direction::Up,
            _ => Direction::Down,
        };
        if dir == e.direction {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.direction = dir;
            e.confidence = 0;
            return;
        }
        if e.confidence >= 2 {
            let step = if e.direction == Direction::Up { 1 } else { -1 };
            for k in 1..=self.degree {
                out.push(PrefetchDecision {
                    target: ev.line + Delta::new(step * k as i32),
                    fill_level: FillLevel::L1,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn ev(line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(1),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn ascending_stream_runs_ahead() {
        let mut p = StreamPrefetcher::default();
        let mut out = Vec::new();
        for l in 0..6u64 {
            p.on_access(&ev(1000 + l), &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|d| d.target.raw() > 1000));
    }

    #[test]
    fn descending_stream_detected() {
        let mut p = StreamPrefetcher::default();
        let mut out = Vec::new();
        for l in 0..6u64 {
            p.on_access(&ev(2000 - l), &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|d| d.target.raw() < 2000));
    }

    #[test]
    fn direction_flip_resets_confidence() {
        let mut p = StreamPrefetcher::default();
        let mut out = Vec::new();
        for seq in [1000u64, 1001, 1002, 1003, 1002, 1001] {
            out.clear();
            p.on_access(&ev(seq), &mut out);
        }
        assert!(
            out.is_empty(),
            "flip must silence the stream until retrained"
        );
    }
}
