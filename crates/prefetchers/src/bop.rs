//! Best-offset prefetching (BOP), the DPC-2 winner (Michaud,
//! HPCA 2016) — the *global-delta* prefetcher Berti's motivation
//! section argues against (Sec. II-B, Fig. 3).
//!
//! BOP tests a fixed list of candidate offsets against a recent-request
//! (RR) table: an offset `d` scores a point whenever the current access
//! `X` finds `X − d` in the RR table, meaning a prefetch with offset
//! `d` issued at `X − d` would have been timely. The highest-scoring
//! offset of each learning round becomes the single prefetch offset for
//! the next round — one offset for the whole program, regardless of IP.

use berti_mem::{AccessEvent, FillEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine};

/// Round terminates when an offset reaches this score.
const SCORE_MAX: u32 = 31;
/// Round terminates after this many passes over the offset list.
const ROUND_MAX: u32 = 100;
/// Offsets scoring at or below this are not worth prefetching with.
const BAD_SCORE: u32 = 1;
/// RR table entries (direct-mapped).
const RR_ENTRIES: usize = 256;

/// Builds Michaud's offset list: 1..=256 with only 2/3/5 prime factors.
fn default_offsets() -> Vec<i32> {
    let mut v = Vec::new();
    for n in 1..=256i32 {
        let mut m = n;
        for p in [2, 3, 5] {
            while m % p == 0 {
                m /= p;
            }
        }
        if m == 1 {
            v.push(n);
        }
    }
    v
}

/// The best-offset prefetcher.
#[derive(Clone, Debug)]
pub struct BestOffset {
    offsets: Vec<i32>,
    scores: Vec<u32>,
    /// Index of the offset tested by the next eligible access.
    probe: usize,
    /// Passes over the offset list in the current round.
    round: u32,
    /// The offset currently used for prefetching (None = off).
    best: Option<i32>,
    rr: Vec<u64>,
    fill_level: FillLevel,
}

impl Default for BestOffset {
    fn default() -> Self {
        Self::new(FillLevel::L1)
    }
}

impl BestOffset {
    /// Creates a BOP instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        let offsets = default_offsets();
        Self {
            scores: vec![0; offsets.len()],
            offsets,
            probe: 0,
            round: 0,
            best: Some(1),
            rr: vec![u64::MAX; RR_ENTRIES],
            fill_level,
        }
    }

    /// The offset currently used for prefetching (Fig. 3's "BOP best
    /// delta"), if prefetching is on.
    pub fn best_offset(&self) -> Option<i32> {
        self.best
    }

    /// The candidate offset list, in probe order (golden-vector tests
    /// pin it against Michaud's published list).
    pub fn offsets(&self) -> &[i32] {
        &self.offsets
    }

    #[inline]
    fn rr_index(line: u64) -> usize {
        ((line ^ (line >> 8)) % RR_ENTRIES as u64) as usize
    }

    fn rr_insert(&mut self, line: u64) {
        self.rr[Self::rr_index(line)] = line;
    }

    fn rr_contains(&self, line: u64) -> bool {
        self.rr[Self::rr_index(line)] == line
    }

    fn end_round(&mut self) {
        let (best_idx, &best_score) = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .expect("nonempty offsets");
        self.best = (best_score > BAD_SCORE).then(|| self.offsets[best_idx]);
        self.scores.fill(0);
        self.probe = 0;
        self.round = 0;
    }

    /// One learning step on an eligible access (miss or prefetched hit).
    fn learn(&mut self, line: VLine) {
        let d = self.offsets[self.probe];
        let base = line.raw().wrapping_sub_signed(i64::from(d));
        if self.rr_contains(base) {
            self.scores[self.probe] += 1;
            if self.scores[self.probe] >= SCORE_MAX {
                self.end_round();
                return;
            }
        }
        self.probe += 1;
        if self.probe == self.offsets.len() {
            self.probe = 0;
            self.round += 1;
            if self.round >= ROUND_MAX {
                self.end_round();
            }
        }
    }
}

impl Prefetcher for BestOffset {
    fn name(&self) -> &'static str {
        "bop"
    }

    fn storage_bits(&self) -> u64 {
        // RR tags (12 bits) + per-offset scores (5 bits) + registers.
        (RR_ENTRIES as u64 * 12) + self.offsets.len() as u64 * 5 + 64
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        let eligible = !ev.hit || ev.timely_prefetch_hit || ev.late_prefetch_hit;
        if !eligible {
            return;
        }
        self.learn(ev.line);
        if let Some(d) = self.best {
            out.push(PrefetchDecision {
                target: ev.line + Delta::new(d),
                fill_level: self.fill_level,
            });
        }
    }

    fn on_fill(&mut self, ev: &FillEvent) {
        // RR records lines whose fetch just completed: a demand fill of
        // Y inserts Y itself; a prefetch fill of Y (issued with offset
        // d) inserts its trigger Y − d. Either way, a later access to
        // X = entry + d proves offset d would have been timely.
        let base = if ev.was_prefetch {
            let d = self.best.unwrap_or(1);
            ev.line.raw().wrapping_sub_signed(i64::from(d))
        } else {
            ev.line.raw()
        };
        self.rr_insert(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn miss(line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(1),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    fn fill(line: u64) -> FillEvent {
        FillEvent {
            line: VLine::new(line),
            ip: Ip::new(1),
            at: Cycle::ZERO,
            latency: 100,
            was_prefetch: false,
        }
    }

    #[test]
    fn offset_list_matches_michaud() {
        let offs = default_offsets();
        assert_eq!(offs.len(), 52);
        assert!(offs.contains(&1) && offs.contains(&256) && offs.contains(&240));
        assert!(!offs.contains(&7) && !offs.contains(&14));
    }

    #[test]
    fn learns_a_dominant_global_offset() {
        let mut p = BestOffset::new(FillLevel::L1);
        let mut out = Vec::new();
        // A pure +4 global stream: every access X has X-4 in RR.
        let mut line = 1000u64;
        for _ in 0..6000 {
            p.on_access(&miss(line), &mut out);
            p.on_fill(&fill(line));
            line += 4;
        }
        assert_eq!(p.best_offset(), Some(4));
    }

    #[test]
    fn interleaved_ip_streams_confuse_the_global_offset() {
        // Sec. II-B / Fig. 3: per-IP streams with different strides make
        // the single global offset represent neither stream exactly.
        let mut p = BestOffset::new(FillLevel::L1);
        let mut out = Vec::new();
        for i in 0..4000u64 {
            // Three interleaved streams with strides 3, 7, 11 at
            // distant bases.
            let (l1, l2, l3) = (1_000 + 3 * i, 500_000 + 7 * i, 900_000 + 11 * i);
            for l in [l1, l2, l3] {
                p.on_access(&miss(l), &mut out);
                p.on_fill(&fill(l));
            }
        }
        // BOP converges to *one* offset; whichever it picks misses at
        // least two of the three streams.
        let d = p.best_offset();
        if let Some(d) = d {
            let matches = [3, 7, 11].iter().filter(|&&s| s == d).count();
            assert!(matches <= 1);
        }
    }

    #[test]
    fn low_scores_turn_prefetching_off() {
        let mut p = BestOffset::new(FillLevel::L1);
        let mut out = Vec::new();
        // Pseudo-random accesses: no offset accumulates a score.
        let mut x = 0x12345u64;
        for _ in 0..60_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = x % 1_000_000;
            p.on_access(&miss(line), &mut out);
        }
        assert_eq!(p.best_offset(), None, "random stream must disable BOP");
    }

    #[test]
    fn prefetches_with_the_learned_offset() {
        let mut p = BestOffset::new(FillLevel::L1);
        let mut out = Vec::new();
        let mut line = 1000u64;
        for _ in 0..6000 {
            out.clear();
            p.on_access(&miss(line), &mut out);
            p.on_fill(&fill(line));
            line += 4;
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target.raw(), (line - 4) + 4);
    }
}
