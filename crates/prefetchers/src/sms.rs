//! Spatial memory streaming (SMS, ISCA 2006) — the classic spatial-
//! footprint prefetcher the paper's related work groups with Bingo
//! (Sec. V: "spatial prefetchers ... usually learn single repeating
//! deltas or bit patterns within a spatial region").
//!
//! SMS records, per spatial region *generation* (from first access to
//! region eviction), the bitmap of lines touched, and associates it
//! with the trigger event `(PC, offset)`. On the next trigger with the
//! same event, the recorded footprint is streamed out. Unlike Bingo it
//! has no long/short event fallback — one pattern history table keyed
//! by `(PC, offset)` only.

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine};

/// Region size in cache lines (2 KB, matching the Bingo configuration
/// so Fig. 7-style storage comparisons are apples-to-apples).
const REGION_LINES: u64 = 32;
/// Active-generation-table entries.
const AGT_ENTRIES: usize = 64;
/// Pattern-history-table entries.
const PHT_ENTRIES: usize = 2048;

#[derive(Clone, Copy, Debug, Default)]
struct Generation {
    region: u64,
    trigger_key: u64,
    footprint: u32,
    last_use: u64,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Pattern {
    key: u64,
    footprint: u32,
    valid: bool,
}

/// The SMS prefetcher.
#[derive(Clone, Debug)]
pub struct Sms {
    agt: Vec<Generation>,
    pht: Vec<Pattern>,
    tick: u64,
    fill_level: FillLevel,
}

impl Default for Sms {
    fn default() -> Self {
        Self::new(FillLevel::L2)
    }
}

impl Sms {
    /// Creates an SMS instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        Self {
            agt: vec![Generation::default(); AGT_ENTRIES],
            pht: vec![Pattern::default(); PHT_ENTRIES],
            tick: 0,
            fill_level,
        }
    }

    #[inline]
    fn key(pc: u64, offset: u32) -> u64 {
        (pc << 5) ^ u64::from(offset)
    }

    fn pht_store(&mut self, key: u64, footprint: u32) {
        let slot = ((key ^ (key >> 11)) % PHT_ENTRIES as u64) as usize;
        self.pht[slot] = Pattern {
            key,
            footprint,
            valid: true,
        };
    }

    fn pht_lookup(&self, key: u64) -> Option<u32> {
        let e = &self.pht[((key ^ (key >> 11)) % PHT_ENTRIES as u64) as usize];
        (e.valid && e.key == key).then_some(e.footprint)
    }

    fn retire(&mut self, g: Generation) {
        // Only multi-line footprints are worth remembering.
        if g.footprint.count_ones() >= 2 {
            self.pht_store(g.trigger_key, g.footprint);
        }
    }
}

impl Prefetcher for Sms {
    fn name(&self) -> &'static str {
        "sms"
    }

    fn storage_bits(&self) -> u64 {
        AGT_ENTRIES as u64 * (30 + 16 + 32 + 5) + PHT_ENTRIES as u64 * (16 + 32)
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let region = ev.line.raw() / REGION_LINES;
        let offset = (ev.line.raw() % REGION_LINES) as u32;

        if let Some(i) = self.agt.iter().position(|g| g.valid && g.region == region) {
            let g = &mut self.agt[i];
            g.footprint |= 1 << offset;
            g.last_use = tick;
            return;
        }
        // Trigger access: predict from the PHT, then open a generation.
        let key = Self::key(ev.ip.raw(), offset);
        if let Some(fp) = self.pht_lookup(key) {
            let base = region * REGION_LINES;
            for bit in 0..REGION_LINES as u32 {
                if bit != offset && fp & (1 << bit) != 0 {
                    out.push(PrefetchDecision {
                        target: VLine::new(base + u64::from(bit)) + Delta::ZERO,
                        fill_level: self.fill_level,
                    });
                }
            }
        }
        let slot = self
            .agt
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| if g.valid { g.last_use } else { 0 })
            .map(|(i, _)| i)
            .expect("nonempty");
        if self.agt[slot].valid {
            let old = self.agt[slot];
            self.retire(old);
        }
        self.agt[slot] = Generation {
            region,
            trigger_key: key,
            footprint: 1 << offset,
            last_use: tick,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn ev(ip: u64, line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(ip),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn replays_footprints_on_matching_trigger() {
        let mut p = Sms::default();
        let mut out = Vec::new();
        // The same (PC, offset 0) trigger opens many regions with the
        // footprint {0, 5, 9}; generations retire under AGT pressure.
        for r in 0..200u64 {
            for o in [0u64, 5, 9] {
                p.on_access(&ev(0x400, r * REGION_LINES + o), &mut out);
            }
        }
        out.clear();
        p.on_access(&ev(0x400, 10_000 * REGION_LINES), &mut out);
        let offsets: Vec<u64> = out.iter().map(|d| d.target.raw() % REGION_LINES).collect();
        assert!(offsets.contains(&5) && offsets.contains(&9), "{offsets:?}");
    }

    #[test]
    fn different_trigger_offset_is_a_different_pattern() {
        let mut p = Sms::default();
        let mut out = Vec::new();
        for r in 0..200u64 {
            for o in [3u64, 7] {
                p.on_access(&ev(0x400, r * REGION_LINES + o), &mut out);
            }
        }
        out.clear();
        // Trigger at offset 0 was never seen: no replay.
        p.on_access(&ev(0x400, 10_000 * REGION_LINES), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_line_generations_are_not_stored() {
        let mut p = Sms::default();
        let mut out = Vec::new();
        for r in 0..200u64 {
            p.on_access(&ev(0x400, r * REGION_LINES), &mut out);
        }
        out.clear();
        p.on_access(&ev(0x400, 10_000 * REGION_LINES), &mut out);
        assert!(out.is_empty(), "a lone trigger line is not a pattern");
    }
}
