//! Signature-path prefetching (SPP, MICRO 2016) with the optional
//! perceptron prefetch filter (PPF, ISCA 2019) — the paper's strongest
//! L2 prefetcher combination (Table III, Figs. 12–15).
//!
//! SPP compresses the delta history within a page into a 12-bit
//! signature, predicts the next delta from a pattern table, and chases
//! the signature chain ahead of the access while the multiplicative
//! path confidence stays above a threshold. PPF filters each candidate
//! through a perceptron over request features, trained with useful/
//! useless feedback from the host cache.
//!
//! As an L2 prefetcher it sees physical lines, so prediction stops at
//! 4 KiB page boundaries (the GHR cross-page mechanism is omitted; see
//! DESIGN.md).

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{Delta, FillLevel, VLine, Vpn, LINES_PER_PAGE};

/// Signature-table entries (Table III: 256-entry ST).
const ST_ENTRIES: usize = 256;
/// Pattern-table sets (Table III: 512-entry, 4-way PT).
const PT_SETS: usize = 512;
/// Pattern-table ways.
const PT_WAYS: usize = 4;
/// Signature width.
const SIG_MASK: u16 = 0xFFF;
/// Maximum lookahead depth.
const MAX_DEPTH: usize = 8;
/// Path confidence below which prediction stops.
const PF_THRESHOLD: f64 = 0.25;
/// Path confidence at or above which the prefetch fills the L2
/// (below: LLC only).
const FILL_THRESHOLD: f64 = 0.50;
/// PPF feature-table sizes (Table III lists 4096×4, 2048×2, 1024×2,
/// 128×1 weight banks; we use one bank per feature).
const PPF_TABLES: [usize; 6] = [4096, 4096, 2048, 1024, 1024, 128];
/// PPF acceptance threshold.
const TAU_ACCEPT: i32 = 0;
/// PPF training margin.
const THETA: i32 = 32;
/// Recent prefetch/reject tables for PPF feedback (Table III: 1024).
const FEEDBACK_ENTRIES: usize = 1024;

#[derive(Clone, Copy, Debug)]
struct StEntry {
    page: Vpn,
    sig: u16,
    last_offset: i32,
    last_use: u64,
    valid: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct PtWay {
    delta: i32,
    counter: u32,
}

#[derive(Clone, Debug, Default)]
struct PtSet {
    ways: [PtWay; PT_WAYS],
    sig_count: u32,
}

#[derive(Clone, Copy, Debug, Default)]
struct Feedback {
    line: u64,
    features: [usize; PPF_TABLES.len()],
    valid: bool,
}

#[derive(Clone, Debug)]
struct Ppf {
    weights: Vec<Vec<i8>>,
    issued: Vec<Feedback>,
    rejected: Vec<Feedback>,
}

impl Ppf {
    fn new() -> Self {
        Self {
            weights: PPF_TABLES.iter().map(|&n| vec![0i8; n]).collect(),
            issued: vec![Feedback::default(); FEEDBACK_ENTRIES],
            rejected: vec![Feedback::default(); FEEDBACK_ENTRIES],
        }
    }

    fn features(
        trigger: VLine,
        target: VLine,
        delta: i32,
        depth: usize,
        sig: u16,
        ip: u64,
    ) -> [usize; PPF_TABLES.len()] {
        [
            (target.raw() % PPF_TABLES[0] as u64) as usize,
            ((trigger.raw() ^ (sig as u64) << 4) % PPF_TABLES[1] as u64) as usize,
            (((delta + 4096) as u64 ^ (depth as u64) << 7) % PPF_TABLES[2] as u64) as usize,
            ((target.index_in_page() ^ (depth as u64) << 6) % PPF_TABLES[3] as u64) as usize,
            ((sig as u64) % PPF_TABLES[4] as u64) as usize,
            ((ip ^ (ip >> 7)) % PPF_TABLES[5] as u64) as usize,
        ]
    }

    fn sum(&self, f: &[usize; PPF_TABLES.len()]) -> i32 {
        f.iter()
            .zip(&self.weights)
            .map(|(&i, t)| i32::from(t[i]))
            .sum()
    }

    fn train(&mut self, f: &[usize; PPF_TABLES.len()], up: bool) {
        for (&i, t) in f.iter().zip(self.weights.iter_mut()) {
            let w = &mut t[i];
            *w = if up {
                w.saturating_add(1).min(15)
            } else {
                w.saturating_sub(1).max(-16)
            };
        }
    }

    fn remember(table: &mut [Feedback], line: u64, f: [usize; PPF_TABLES.len()]) {
        let slot = (line % FEEDBACK_ENTRIES as u64) as usize;
        table[slot] = Feedback {
            line,
            features: f,
            valid: true,
        };
    }

    fn recall(table: &mut [Feedback], line: u64) -> Option<[usize; PPF_TABLES.len()]> {
        let slot = (line % FEEDBACK_ENTRIES as u64) as usize;
        let e = table[slot];
        if e.valid && e.line == line {
            table[slot].valid = false;
            Some(e.features)
        } else {
            None
        }
    }
}

/// The SPP prefetcher (optionally PPF-filtered; see [`SppPpf`]).
#[derive(Clone, Debug)]
pub struct Spp {
    st: Vec<StEntry>,
    pt: Vec<PtSet>,
    ppf: Option<Ppf>,
    tick: u64,
}

/// SPP with the perceptron prefetch filter enabled — the paper's
/// "SPP-PPF" configuration.
pub struct SppPpf;

impl SppPpf {
    /// Builds an SPP instance with PPF filtering on.
    pub fn build() -> Spp {
        Spp::with_ppf(true)
    }
}

impl Default for Spp {
    fn default() -> Self {
        Self::with_ppf(false)
    }
}

impl Spp {
    /// Creates SPP; `ppf` enables the perceptron filter.
    pub fn with_ppf(ppf: bool) -> Self {
        Self {
            st: vec![
                StEntry {
                    page: Vpn::default(),
                    sig: 0,
                    last_offset: 0,
                    last_use: 0,
                    valid: false,
                };
                ST_ENTRIES
            ],
            pt: vec![PtSet::default(); PT_SETS],
            ppf: ppf.then(Ppf::new),
            tick: 0,
        }
    }

    /// Folds one in-page delta into a 12-bit signature: `(sig << 3) ^
    /// sig_delta`, where `sig_delta` is the delta in **7-bit
    /// sign-magnitude** (magnitude in bits 0–5, sign in bit 6), per the
    /// SPP paper's pseudocode and the ChampSim reference. A
    /// two's-complement truncation here would hash −1 as `0x7F` instead
    /// of `0x41`, folding descending streams onto unrelated signatures.
    #[inline]
    pub fn signature_update(sig: u16, delta: i32) -> u16 {
        let sig_delta = if delta < 0 {
            (delta.unsigned_abs() & 0x3F) as u16 | 0x40
        } else {
            (delta & 0x3F) as u16
        };
        ((sig << 3) ^ sig_delta) & SIG_MASK
    }

    #[inline]
    fn pt_set(sig: u16) -> usize {
        (sig as usize) % PT_SETS
    }

    fn pt_train(&mut self, sig: u16, delta: i32) {
        let set = &mut self.pt[Self::pt_set(sig)];
        set.sig_count += 1;
        if let Some(w) = set.ways.iter_mut().find(|w| w.delta == delta) {
            w.counter += 1;
            return;
        }
        let w = set
            .ways
            .iter_mut()
            .min_by_key(|w| w.counter)
            .expect("nonempty ways");
        *w = PtWay { delta, counter: 1 };
    }

    fn pt_best(&self, sig: u16) -> Option<(i32, f64)> {
        let set = &self.pt[Self::pt_set(sig)];
        if set.sig_count == 0 {
            return None;
        }
        set.ways
            .iter()
            .max_by_key(|w| w.counter)
            .filter(|w| w.counter > 0 && w.delta != 0)
            .map(|w| (w.delta, f64::from(w.counter) / f64::from(set.sig_count)))
    }
}

impl Prefetcher for Spp {
    fn name(&self) -> &'static str {
        if self.ppf.is_some() {
            "spp-ppf"
        } else {
            "spp"
        }
    }

    fn storage_bits(&self) -> u64 {
        let st = ST_ENTRIES as u64 * (16 + 12 + 6 + 8);
        let pt = (PT_SETS * PT_WAYS) as u64 * (7 + 4) + PT_SETS as u64 * 4;
        let ppf = if self.ppf.is_some() {
            PPF_TABLES.iter().map(|&n| n as u64 * 5).sum::<u64>() + 2 * FEEDBACK_ENTRIES as u64 * 48
        } else {
            0
        };
        st + pt + ppf
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        // PPF feedback: a demand touching a previously rejected target
        // means the filter was wrong; a prefetched-line hit means it
        // was right.
        if let Some(ppf) = self.ppf.as_mut() {
            if let Some(f) = Ppf::recall(&mut ppf.rejected, ev.line.raw()) {
                ppf.train(&f, true);
            }
            if ev.timely_prefetch_hit || ev.late_prefetch_hit {
                if let Some(f) = Ppf::recall(&mut ppf.issued, ev.line.raw()) {
                    ppf.train(&f, true);
                }
            }
        }
        self.tick += 1;
        let tick = self.tick;
        let page = ev.line.page();
        let offset = ev.line.index_in_page() as i32;
        let slot = match self.st.iter().position(|e| e.valid && e.page == page) {
            Some(i) => i,
            None => {
                let i = self
                    .st
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.last_use } else { 0 })
                    .map(|(i, _)| i)
                    .expect("nonempty");
                self.st[i] = StEntry {
                    page,
                    sig: 0,
                    last_offset: offset,
                    last_use: tick,
                    valid: true,
                };
                return;
            }
        };
        let (old_sig, delta) = {
            let e = &mut self.st[slot];
            e.last_use = tick;
            let delta = offset - e.last_offset;
            if delta == 0 {
                return;
            }
            let old = e.sig;
            e.sig = Self::signature_update(old, delta);
            e.last_offset = offset;
            (old, delta)
        };
        self.pt_train(old_sig, delta);

        // Lookahead prediction along the signature chain.
        let mut sig = self.st[slot].sig;
        let mut conf = 1.0f64;
        let mut cur_offset = offset;
        let trigger = ev.line;
        for depth in 0..MAX_DEPTH {
            let Some((delta, ratio)) = self.pt_best(sig) else {
                break;
            };
            conf *= ratio;
            if conf < PF_THRESHOLD {
                break;
            }
            let next_offset = cur_offset + delta;
            if next_offset < 0 || next_offset >= LINES_PER_PAGE as i32 {
                break; // physical page boundary; no GHR
            }
            let target = trigger + Delta::new(next_offset - trigger.index_in_page() as i32);
            let fill_level = if conf >= FILL_THRESHOLD {
                FillLevel::L2
            } else {
                FillLevel::Llc
            };
            let accept = match self.ppf.as_mut() {
                None => true,
                Some(ppf) => {
                    let f = Ppf::features(trigger, target, delta, depth, sig, ev.ip.raw());
                    let sum = ppf.sum(&f);
                    if sum >= TAU_ACCEPT {
                        if sum < THETA {
                            Ppf::remember(&mut ppf.issued, target.raw(), f);
                        }
                        true
                    } else {
                        if sum > -THETA {
                            Ppf::remember(&mut ppf.rejected, target.raw(), f);
                        }
                        false
                    }
                }
            };
            if accept {
                out.push(PrefetchDecision { target, fill_level });
            }
            sig = Self::signature_update(sig, delta);
            cur_offset = next_offset;
        }
    }

    fn on_eviction(&mut self, line: VLine, wasted_prefetch: bool) {
        if !wasted_prefetch {
            return;
        }
        if let Some(ppf) = self.ppf.as_mut() {
            if let Some(f) = Ppf::recall(&mut ppf.issued, line.raw()) {
                ppf.train(&f, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn ev(line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(1),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    #[test]
    fn signature_update_uses_sign_magnitude_deltas() {
        // Regression: the signature hash truncated deltas in
        // two's-complement, so −1 folded in as 0x7F instead of the
        // paper's sign-magnitude 0x41.
        assert_eq!(Spp::signature_update(0, -1), 0x41);
        assert_eq!(Spp::signature_update(0, 1), 0x01);
        assert_ne!(
            Spp::signature_update(0, -1),
            Spp::signature_update(0, 127),
            "−1 must not alias with +127"
        );
    }

    #[test]
    fn descending_streams_learn_and_run_ahead() {
        // With two's-complement folding, descending streams hashed onto
        // signatures unrelated to their ascending twins; sign-magnitude
        // makes −1 as learnable as +1.
        let mut p = Spp::default();
        let mut out = Vec::new();
        let base = 64 * 1000 + 63; // end of a page
        for i in 0..20u64 {
            out.clear();
            p.on_access(&ev(base - i), &mut out);
        }
        assert!(!out.is_empty(), "descending stride must predict");
        assert!(
            out.iter().all(|d| d.target.raw() < base - 19),
            "predictions run ahead (downward): {out:?}"
        );
    }

    #[test]
    fn learns_stride_and_runs_ahead() {
        let mut p = Spp::default();
        let mut out = Vec::new();
        let base = 64 * 1000; // page-aligned line number
        for i in 0..20u64 {
            out.clear();
            p.on_access(&ev(base + i), &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|d| d.target.raw() > base + 19));
        assert!(
            out.len() >= 2,
            "high-confidence chain should run multiple deltas deep"
        );
    }

    #[test]
    fn stops_at_page_boundary() {
        let mut p = Spp::default();
        let mut out = Vec::new();
        let base = 64 * 1000;
        // Train +1 up to the end of the page.
        for i in 40..64u64 {
            out.clear();
            p.on_access(&ev(base + i), &mut out);
        }
        assert!(
            out.iter()
                .all(|d| d.target.page() == VLine::new(base).page()),
            "no cross-page targets without a GHR: {out:?}"
        );
    }

    #[test]
    fn path_confidence_decays_with_depth() {
        let mut p = Spp::default();
        let mut out = Vec::new();
        // Genuinely noisy deltas (seeded LCG): a periodic pattern would
        // give deterministic signatures and full-depth chains, but
        // random 50/50 deltas halve the path confidence per step.
        let mut line = 64 * 3000;
        let mut x = 0xdeadbeefu64;
        let mut chain_sum = 0usize;
        let mut samples = 0usize;
        for i in 0..4000 {
            out.clear();
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            line += if (x >> 33) & 1 == 0 { 1 } else { 2 };
            if line % 64 > 60 {
                line += 64 - (line % 64); // keep within fresh pages
            }
            p.on_access(&ev(line), &mut out);
            if i >= 2000 {
                chain_sum += out.len();
                samples += 1;
            }
        }
        let avg = chain_sum as f64 / samples as f64;
        assert!(
            avg < MAX_DEPTH as f64 / 2.0,
            "50/50 noise must curb the steady-state lookahead: avg {avg:.2}"
        );
    }

    #[test]
    fn low_confidence_targets_fill_llc_only() {
        let mut p = Spp::default();
        let mut out = Vec::new();
        let mut line = 64 * 5000;
        let mut x = 0x1234_5678u64;
        let mut saw_llc_tail = false;
        for _ in 0..4000 {
            out.clear();
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            line += if (x >> 33) & 1 == 0 { 1 } else { 3 };
            if line % 64 > 59 {
                line += 64 - (line % 64);
            }
            p.on_access(&ev(line), &mut out);
            // With ~50/50 deltas, step-1 confidence ≈ 0.5 (fills L2)
            // and step-2 ≈ 0.25 (fills LLC only).
            if out.len() > 1 && out[out.len() - 1].fill_level == FillLevel::Llc {
                saw_llc_tail = true;
            }
        }
        assert!(
            saw_llc_tail,
            "deep low-confidence steps must target the LLC"
        );
    }

    #[test]
    fn ppf_rejects_after_negative_feedback() {
        let mut p = SppPpf::build();
        let mut out = Vec::new();
        let base = 64 * 7000;
        // Train a stride; then report every prefetch as wasted.
        for round in 0..30 {
            for i in 0..40u64 {
                out.clear();
                p.on_access(&ev(base + round * 64 + i), &mut out);
                for d in &out {
                    p.on_eviction(d.target, true);
                }
            }
        }
        out.clear();
        p.on_access(&ev(base + 31 * 64), &mut out);
        p.on_access(&ev(base + 31 * 64 + 1), &mut out);
        let rejected_count = out.len();
        // An unfiltered SPP with identical training issues more.
        let mut raw = Spp::default();
        let mut out_raw = Vec::new();
        for round in 0..30 {
            for i in 0..40u64 {
                out_raw.clear();
                raw.on_access(&ev(base + round * 64 + i), &mut out_raw);
            }
        }
        out_raw.clear();
        raw.on_access(&ev(base + 31 * 64), &mut out_raw);
        raw.on_access(&ev(base + 31 * 64 + 1), &mut out_raw);
        assert!(
            rejected_count <= out_raw.len(),
            "PPF must not issue more than raw SPP after pure negative feedback"
        );
    }

    #[test]
    fn names_distinguish_filtering() {
        assert_eq!(Spp::default().name(), "spp");
        assert_eq!(SppPpf::build().name(), "spp-ppf");
        assert!(SppPpf::build().storage_bits() > Spp::default().storage_bits());
    }
}
