//! The managed irregular stream buffer (MISB, ISCA 2019): a
//! storage-efficient temporal prefetcher that linearizes PC-localized
//! access streams into a *structural address space* and prefetches the
//! successors of the current access's structural position (Sec. IV-H,
//! Fig. 19).
//!
//! The full MISB backs its mappings with off-chip metadata behind a
//! 32 KB on-chip metadata cache and a 17 KB Bloom filter; this
//! reproduction bounds the two mapping tables to the same on-chip
//! budget with LRU replacement, which preserves the behaviour the paper
//! evaluates (temporal streams covered ↔ capacity misses on huge
//! footprints), without modelling the off-chip metadata traffic.

use std::collections::HashMap;

use berti_mem::{AccessEvent, PrefetchDecision, Prefetcher};
use berti_types::{FillLevel, VLine};

/// Bounded entries in each direction of the mapping (≈ the paper's
/// 98 KB total budget at ~24 bits per mapping pair).
const MAP_ENTRIES: usize = 16_384;
/// Structural stream chunk allocated per PC at a time.
const STREAM_CHUNK: u64 = 256;
/// Prefetch degree along the structural stream.
const DEGREE: u64 = 2;

/// The MISB temporal prefetcher.
#[derive(Clone, Debug)]
pub struct Misb {
    /// Physical line → structural address.
    ps: HashMap<u64, u64>,
    /// Structural address → physical line.
    sp: HashMap<u64, u64>,
    /// LRU order for bounded eviction (approximate: FIFO ring of keys).
    ps_ring: Vec<u64>,
    ring_pos: usize,
    /// Per-PC structural allocation cursor.
    streams: HashMap<u64, u64>,
    /// Next unallocated structural chunk.
    next_chunk: u64,
    fill_level: FillLevel,
}

impl Default for Misb {
    fn default() -> Self {
        Self::new(FillLevel::L2)
    }
}

impl Misb {
    /// Creates a MISB instance prefetching into `fill_level`.
    pub fn new(fill_level: FillLevel) -> Self {
        Self {
            ps: HashMap::new(),
            sp: HashMap::new(),
            ps_ring: vec![u64::MAX; MAP_ENTRIES],
            ring_pos: 0,
            streams: HashMap::new(),
            next_chunk: 0,
            fill_level,
        }
    }

    fn bound_insert(&mut self, line: u64, structural: u64) {
        // Evict the oldest mapping once the on-chip budget is exceeded.
        let victim = self.ps_ring[self.ring_pos];
        if victim != u64::MAX {
            if let Some(s) = self.ps.remove(&victim) {
                self.sp.remove(&s);
            }
        }
        self.ps_ring[self.ring_pos] = line;
        self.ring_pos = (self.ring_pos + 1) % MAP_ENTRIES;
        self.ps.insert(line, structural);
        self.sp.insert(structural, line);
    }

    fn allocate_structural(&mut self, pc: u64) -> u64 {
        let cursor = self.streams.entry(pc).or_insert(u64::MAX);
        if *cursor == u64::MAX || (*cursor + 1).is_multiple_of(STREAM_CHUNK) {
            // Start a new chunk for this PC's stream.
            let base = self.next_chunk * STREAM_CHUNK;
            self.next_chunk += 1;
            *cursor = base;
        } else {
            *cursor += 1;
        }
        *cursor
    }
}

impl Prefetcher for Misb {
    fn name(&self) -> &'static str {
        "misb"
    }

    fn storage_bits(&self) -> u64 {
        // 32 KB metadata cache + 17 KB Bloom filter + stream registers
        // (Sec. IV-H's 98 KB includes TLB-sync machinery we charge too).
        98 * 1024 * 8
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        // Temporal prefetchers train on the miss stream (and prefetched
        // first touches), not on every hit.
        let eligible = !ev.hit || ev.timely_prefetch_hit || ev.late_prefetch_hit;
        if !eligible {
            return;
        }
        let line = ev.line.raw();
        let pc = ev.ip.raw();
        let structural = match self.ps.get(&line) {
            Some(&s) => {
                // Keep the per-PC cursor at the replayed position so
                // future cold lines extend this stream.
                self.streams.insert(pc, s);
                s
            }
            None => {
                let s = self.allocate_structural(pc);
                self.bound_insert(line, s);
                s
            }
        };
        for k in 1..=DEGREE {
            if let Some(&next) = self.sp.get(&(structural + k)) {
                out.push(PrefetchDecision {
                    target: VLine::new(next),
                    fill_level: self.fill_level,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::{AccessKind, Cycle, Ip};

    fn miss(ip: u64, line: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(ip),
            line: VLine::new(line),
            at: Cycle::ZERO,
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    /// An irregular but *repeating* pointer-chase sequence — the
    /// workload class temporal prefetchers exist for.
    const CHAIN: [u64; 6] = [900, 17, 5003, 44, 77777, 1234];

    #[test]
    fn replays_a_temporal_chain_on_second_traversal() {
        let mut p = Misb::default();
        let mut out = Vec::new();
        for &l in &CHAIN {
            p.on_access(&miss(0x400, l), &mut out);
        }
        assert!(out.is_empty(), "first traversal is cold");
        // Second traversal: each access predicts its successors.
        let mut covered = 0;
        for (i, &l) in CHAIN.iter().enumerate() {
            out.clear();
            p.on_access(&miss(0x400, l), &mut out);
            if i + 1 < CHAIN.len() && out.iter().any(|d| d.target.raw() == CHAIN[i + 1]) {
                covered += 1;
            }
        }
        assert!(covered >= CHAIN.len() - 2, "covered only {covered}");
    }

    #[test]
    fn streams_are_pc_localized() {
        let mut p = Misb::default();
        let mut out = Vec::new();
        // Interleave two PCs' chains; each must replay its own chain.
        let chain_b = [3u64, 999, 42, 100_000];
        for i in 0..4 {
            p.on_access(&miss(1, CHAIN[i]), &mut out);
            p.on_access(&miss(2, chain_b[i]), &mut out);
        }
        out.clear();
        p.on_access(&miss(1, CHAIN[0]), &mut out);
        assert!(
            out.iter().any(|d| d.target.raw() == CHAIN[1]),
            "PC 1's successor must come from PC 1's stream: {out:?}"
        );
        assert!(
            !out.iter().any(|d| d.target.raw() == chain_b[1]),
            "PC 2's chain must not leak into PC 1's stream"
        );
    }

    #[test]
    fn bounded_metadata_forgets_old_streams() {
        let mut p = Misb::default();
        let mut out = Vec::new();
        p.on_access(&miss(7, 42), &mut out);
        // Blow the metadata budget with distinct lines.
        for l in 0..(MAP_ENTRIES as u64 + 10) {
            p.on_access(&miss(8, 1_000_000 + l), &mut out);
        }
        assert!(!p.ps.contains_key(&42), "oldest mapping must be evicted");
        assert!(p.ps.len() <= MAP_ENTRIES);
    }
}
