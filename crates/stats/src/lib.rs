//! `berti-stats`: the unified statistics layer.
//!
//! Every component of the simulator (caches, DRAM, TLBs, the core, the
//! prefetch flow) keeps its event counters in a struct defined through
//! [`counter_group!`]. The macro derives serde round-tripping *and* the
//! [`Counters`] trait, so the field list is written exactly once — the
//! same list drives JSON serialization, registry snapshots, and
//! windowed diffs. Components register snapshots of their counters
//! into a [`Registry`] under a group name ("l1d", "dram", …); reports
//! are then assembled generically from the registry, and the interval
//! sampler diffs two registry snapshots to produce per-window
//! IPC/MPKI/accuracy time series without any per-field plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A struct of `u64` event counters with a single-sourced field list.
///
/// Implemented by [`counter_group!`]; never implement it by hand — the
/// whole point is that `counter_names()` and `values()` can never
/// drift from the struct definition.
pub trait Counters: Default {
    /// Field names, in declaration order.
    fn counter_names() -> &'static [&'static str];

    /// Field values, parallel to [`Counters::counter_names`].
    fn values(&self) -> Vec<u64>;

    /// Rebuilds the struct from values parallel to
    /// [`Counters::counter_names`]; missing trailing values read as 0.
    fn from_values(values: &[u64]) -> Self;
}

/// Defines a counter struct and wires it into the stats layer.
///
/// Expands to the struct itself (all fields `pub u64`), the usual
/// derives (`Clone`, `Copy`, `Debug`, `Default`, serde), and a
/// [`Counters`] impl whose name/value lists are generated from the
/// same field list — one definition site, three consumers.
///
/// ```
/// berti_stats::counter_group! {
///     /// Counters of an example widget.
///     pub struct WidgetStats {
///         /// Times the widget frobbed.
///         pub frobs: u64,
///         /// Times the widget twiddled.
///         pub twiddles: u64,
///     }
/// }
/// # use berti_stats::Counters;
/// assert_eq!(WidgetStats::counter_names(), ["frobs", "twiddles"]);
/// ```
#[macro_export]
macro_rules! counter_group {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $( $(#[$fmeta:meta])* pub $field:ident: u64 ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field: u64, )+
        }

        impl $crate::Counters for $name {
            fn counter_names() -> &'static [&'static str] {
                &[ $( stringify!($field) ),+ ]
            }

            fn values(&self) -> ::std::vec::Vec<u64> {
                ::std::vec![ $( self.$field ),+ ]
            }

            fn from_values(values: &[u64]) -> Self {
                let mut iter = values.iter().copied();
                Self {
                    $( $field: iter.next().unwrap_or(0), )+
                }
            }
        }
    };
}

/// One registered group: a component's counters under a name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// Group name ("l1d", "dram", "core", …).
    pub name: &'static str,
    /// Counter names, as declared by the source struct.
    pub counter_names: &'static [&'static str],
    /// Counter values, parallel to `counter_names`.
    pub values: Vec<u64>,
}

impl Group {
    /// The value of one counter, by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_names
            .iter()
            .position(|n| *n == name)
            .map(|i| self.values[i])
    }
}

/// A snapshot registry of named counter groups.
///
/// Components *register into* the registry by snapshotting their
/// counters under a group name; consumers read groups back as typed
/// structs ([`Registry::get`]), individual counters
/// ([`Registry::counter`]), or window diffs ([`Registry::delta_from`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    groups: Vec<Group>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) `counters` under `group`.
    pub fn record<C: Counters>(&mut self, group: &'static str, counters: &C) {
        let g = Group {
            name: group,
            counter_names: C::counter_names(),
            values: counters.values(),
        };
        match self.groups.iter_mut().find(|e| e.name == group) {
            Some(existing) => *existing = g,
            None => self.groups.push(g),
        }
    }

    /// All groups, in registration order.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// One group, by name.
    pub fn group(&self, name: &str) -> Option<&Group> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Rebuilds the typed counter struct registered under `group`;
    /// all-zero if the group was never registered.
    pub fn get<C: Counters>(&self, group: &str) -> C {
        match self.group(group) {
            Some(g) => C::from_values(&g.values),
            None => C::default(),
        }
    }

    /// The value of `counter` in `group`, if both exist.
    pub fn counter(&self, group: &str, counter: &str) -> Option<u64> {
        self.group(group).and_then(|g| g.counter(counter))
    }

    /// The window between two snapshots: every counter of `self` minus
    /// the matching counter of `earlier` (saturating; groups absent
    /// from `earlier` pass through unchanged). This is what the
    /// interval sampler feeds per-window metric computations with.
    pub fn delta_from(&self, earlier: &Registry) -> Registry {
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let values = match earlier.group(g.name) {
                    Some(e) => g
                        .values
                        .iter()
                        .zip(e.values.iter().chain(std::iter::repeat(&0)))
                        .map(|(now, before)| now.saturating_sub(*before))
                        .collect(),
                    None => g.values.clone(),
                };
                Group {
                    name: g.name,
                    counter_names: g.counter_names,
                    values,
                }
            })
            .collect();
        Registry { groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    counter_group! {
        /// Test counters.
        pub struct TestStats {
            /// First.
            pub alpha: u64,
            /// Second.
            pub beta: u64,
        }
    }

    #[test]
    fn macro_single_sources_the_field_list() {
        assert_eq!(TestStats::counter_names(), ["alpha", "beta"]);
        let s = TestStats { alpha: 3, beta: 7 };
        assert_eq!(s.values(), vec![3, 7]);
        assert_eq!(TestStats::from_values(&[3, 7]), s);
        // Missing trailing values read as zero.
        assert_eq!(TestStats::from_values(&[3]).beta, 0);
    }

    #[test]
    fn macro_output_serializes_by_field_name() {
        let s = TestStats { alpha: 1, beta: 2 };
        let json = serde::json::to_string(&s);
        assert_eq!(json, r#"{"alpha":1,"beta":2}"#);
        let back: TestStats = serde::json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn registry_records_and_reads_back() {
        let mut reg = Registry::new();
        reg.record("t", &TestStats { alpha: 5, beta: 9 });
        assert_eq!(reg.counter("t", "alpha"), Some(5));
        assert_eq!(reg.counter("t", "nope"), None);
        assert_eq!(reg.counter("nope", "alpha"), None);
        let t: TestStats = reg.get("t");
        assert_eq!(t.beta, 9);
        let missing: TestStats = reg.get("absent");
        assert_eq!(missing, TestStats::default());
        // Re-recording replaces in place (no duplicate groups).
        reg.record("t", &TestStats { alpha: 6, beta: 9 });
        assert_eq!(reg.groups().len(), 1);
        assert_eq!(reg.counter("t", "alpha"), Some(6));
    }

    #[test]
    fn delta_from_diffs_per_counter() {
        let mut before = Registry::new();
        before.record("t", &TestStats { alpha: 10, beta: 1 });
        let mut after = Registry::new();
        after.record("t", &TestStats { alpha: 25, beta: 4 });
        after.record("u", &TestStats { alpha: 2, beta: 2 });
        let window = after.delta_from(&before);
        assert_eq!(window.counter("t", "alpha"), Some(15));
        assert_eq!(window.counter("t", "beta"), Some(3));
        // Groups absent from the earlier snapshot pass through.
        assert_eq!(window.counter("u", "alpha"), Some(2));
    }
}
