//! Berti configuration and the Table I storage accounting.

/// Configuration of the Berti prefetcher.
///
/// Defaults reproduce the paper's hardware proposal (Sec. III-C and
/// Table I). The sensitivity studies of Sec. IV-J vary
/// [`history_sets`](Self::history_sets)/[`history_ways`](Self::history_ways)
/// (Fig. 22), the watermarks (Fig. 21), the latency-field width, and
/// cross-page prefetching.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BertiConfig {
    /// History-table sets (8).
    pub history_sets: usize,
    /// History-table ways (16) — FIFO replacement within a set.
    pub history_ways: usize,
    /// Table-of-deltas entries (16, fully associative, FIFO).
    pub delta_table_entries: usize,
    /// Deltas tracked per table-of-deltas entry (16).
    pub deltas_per_entry: usize,
    /// Maximum timely deltas collected per history search (8, youngest
    /// first).
    pub max_timely_deltas_per_search: usize,
    /// Maximum deltas selected for prefetching per entry per phase (12).
    pub max_prefetch_deltas: usize,
    /// Searches per learning phase (16: the 4-bit counter overflows).
    pub rounds_per_phase: u32,
    /// High-coverage watermark: above it, deltas fill to L1D (0.65).
    pub high_watermark: f64,
    /// Medium-coverage watermark: above it, deltas fill to L2 (0.35).
    pub medium_watermark: f64,
    /// Low-coverage watermark for LLC-only prefetching; the paper sets
    /// it equal to the medium watermark, disabling the LLC tier (0.35).
    pub low_watermark: f64,
    /// Replacement-candidate threshold: an `L2Pref` delta below this
    /// coverage is marked replaceable (0.50).
    pub replaceable_watermark: f64,
    /// Coverage demanded while an entry's statuses are still warming up
    /// (0.80).
    pub warmup_watermark: f64,
    /// Minimum searches before warm-up prefetching begins (8).
    pub warmup_min_rounds: u32,
    /// L1D MSHR occupancy above which L1-bound prefetches are demoted
    /// to L2 fills (0.70).
    pub mshr_watermark: f64,
    /// Width of the per-line fetch-latency field (12 bits; latencies
    /// that overflow are recorded as zero and skipped by training).
    pub latency_bits: u32,
    /// Width of history timestamps (16 bits); accesses older than the
    /// wrap window can no longer be compared and are skipped.
    pub timestamp_bits: u32,
    /// Width of the signed delta field (13 bits: −4096..=4095 lines).
    pub delta_bits: u32,
    /// Issue prefetches that cross a 4 KiB page (Sec. IV-J ablation);
    /// training is unaffected.
    pub cross_page: bool,
}

impl Default for BertiConfig {
    fn default() -> Self {
        Self {
            history_sets: 8,
            history_ways: 16,
            delta_table_entries: 16,
            deltas_per_entry: 16,
            max_timely_deltas_per_search: 8,
            max_prefetch_deltas: 12,
            rounds_per_phase: 16,
            high_watermark: 0.65,
            medium_watermark: 0.35,
            low_watermark: 0.35,
            replaceable_watermark: 0.50,
            warmup_watermark: 0.80,
            warmup_min_rounds: 8,
            mshr_watermark: 0.70,
            latency_bits: 12,
            timestamp_bits: 16,
            delta_bits: 13,
            cross_page: true,
        }
    }
}

impl BertiConfig {
    /// Scales the history table, the table of deltas, and the deltas
    /// per entry by `factor` (Fig. 22's 0.25×–4× sweep). The scaled
    /// sizes are clamped to at least one set/way/entry/delta.
    pub fn scaled_tables(mut self, factor: f64) -> Self {
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        // Fig. 22 scales capacity; grow sets for the history table so
        // associativity (and the per-search window) stays put.
        self.history_sets = scale(self.history_sets);
        self.delta_table_entries = scale(self.delta_table_entries);
        self.deltas_per_entry = scale(self.deltas_per_entry);
        self
    }

    /// Storage accounting per structure (Table I).
    pub fn storage(&self) -> StorageBreakdown {
        let history_entry_bits = 7 + 24 + self.timestamp_bits as u64;
        let history_bits = (self.history_sets * self.history_ways) as u64 * history_entry_bits
            + self.history_sets as u64 * 4; // FIFO pointer per set
        let delta_slot_bits = self.delta_bits as u64 + 4 + 2;
        let delta_entry_bits = 10 + 4 + self.deltas_per_entry as u64 * delta_slot_bits;
        let delta_table_bits = self.delta_table_entries as u64 * delta_entry_bits + 4;
        // PQ (16) + MSHR (16) timestamps, 16 bits each.
        let queue_bits = (16 + 16) * self.timestamp_bits as u64;
        // L1D shadow latency: 768 lines × latency field.
        let shadow_bits = 768 * self.latency_bits as u64;
        StorageBreakdown {
            history_bits,
            delta_table_bits,
            queue_bits,
            shadow_bits,
        }
    }
}

/// Per-structure storage cost in bits (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// History table (0.74 KB in the paper's configuration).
    pub history_bits: u64,
    /// Table of deltas (0.62 KB).
    pub delta_table_bits: u64,
    /// PQ + MSHR timestamp extensions (0.06 KB).
    pub queue_bits: u64,
    /// L1D per-line latency shadow (1.13 KB).
    pub shadow_bits: u64,
}

impl StorageBreakdown {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.history_bits + self.delta_table_bits + self.queue_bits + self.shadow_bits
    }

    /// Total kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_storage_matches_paper() {
        let s = BertiConfig::default().storage();
        let kb = |b: u64| b as f64 / 8.0 / 1024.0;
        assert!(
            (kb(s.history_bits) - 0.74).abs() < 0.01,
            "{}",
            kb(s.history_bits)
        );
        assert!(
            (kb(s.delta_table_bits) - 0.62).abs() < 0.01,
            "{}",
            kb(s.delta_table_bits)
        );
        assert!(
            (kb(s.queue_bits) - 0.06).abs() < 0.01,
            "{}",
            kb(s.queue_bits)
        );
        assert!(
            (kb(s.shadow_bits) - 1.13).abs() < 0.01,
            "{}",
            kb(s.shadow_bits)
        );
        assert!((s.total_kb() - 2.55).abs() < 0.02, "{}", s.total_kb());
    }

    #[test]
    fn default_watermarks_match_section_iii() {
        let c = BertiConfig::default();
        assert_eq!(c.high_watermark, 0.65);
        assert_eq!(c.medium_watermark, 0.35);
        assert_eq!(c.low_watermark, c.medium_watermark, "LLC tier disabled");
        assert_eq!(c.mshr_watermark, 0.70);
        assert_eq!(c.rounds_per_phase, 16);
        assert_eq!(c.max_prefetch_deltas, 12);
    }

    #[test]
    fn scaling_changes_capacity_monotonically() {
        let base = BertiConfig::default().storage().total_bits();
        let quarter = BertiConfig::default()
            .scaled_tables(0.25)
            .storage()
            .total_bits();
        let quadruple = BertiConfig::default()
            .scaled_tables(4.0)
            .storage()
            .total_bits();
        assert!(quarter < base);
        assert!(quadruple > base);
    }

    #[test]
    fn scaling_never_reaches_zero() {
        let c = BertiConfig::default().scaled_tables(0.01);
        assert!(c.history_sets >= 1);
        assert!(c.delta_table_entries >= 1);
        assert!(c.deltas_per_entry >= 1);
    }
}
