//! The DPC-3 predecessor of Berti: a **per-page** best-request-time
//! delta prefetcher ("Berti: a per-page best-request-time delta
//! prefetcher", Ros, 3rd Data Prefetching Championship — the paper's
//! reference [46]).
//!
//! Identical training machinery to the MICRO 2022 design, but the
//! *local context* is the 4 KiB page of the access instead of the
//! instruction pointer. Useful for the local-context ablation: per-IP
//! deltas (this paper) vs per-page deltas (DPC-3) vs one global delta
//! (BOP) — see the `sens_local_context` experiment.

use berti_mem::{AccessEvent, FillEvent, PrefetchDecision, Prefetcher};
use berti_types::{Cycle, Delta, FillLevel, Ip, VLine};

use crate::deltas::{DeltaStatus, DeltaTable};
use crate::history::HistoryTable;
use crate::storage::BertiConfig;

/// The per-page Berti variant.
///
/// # Example
///
/// ```
/// use berti_core::{BertiConfig, BertiPage};
/// use berti_mem::Prefetcher;
///
/// let p = BertiPage::new(BertiConfig::default());
/// assert_eq!(p.name(), "berti-page");
/// ```
#[derive(Clone, Debug)]
pub struct BertiPage {
    cfg: BertiConfig,
    history: HistoryTable,
    deltas: DeltaTable,
    scratch: Vec<(Delta, DeltaStatus)>,
    /// Same drop accounting as [`crate::Berti`]: fills with a latency
    /// larger than the fill cycle, and underflowing prediction targets.
    dropped_inconsistent_latency: u64,
    dropped_underflow_target: u64,
}

impl BertiPage {
    /// Creates a per-page Berti with the same table geometry as the
    /// per-IP design.
    pub fn new(cfg: BertiConfig) -> Self {
        Self {
            history: HistoryTable::new(cfg.history_sets, cfg.history_ways, cfg.timestamp_bits),
            deltas: DeltaTable::new(&cfg),
            scratch: Vec::new(),
            cfg,
            dropped_inconsistent_latency: 0,
            dropped_underflow_target: 0,
        }
    }

    /// Diagnostic counters: `(fills dropped for latency > fill cycle,
    /// predictions dropped for line-address underflow)`.
    pub fn drop_counters(&self) -> (u64, u64) {
        (
            self.dropped_inconsistent_latency,
            self.dropped_underflow_target,
        )
    }

    /// The page of `line`, encoded as the tables' context key.
    fn context(line: VLine) -> Ip {
        Ip::new(line.page().raw() << 2)
    }

    fn truncate_latency(&self, latency: u64) -> u64 {
        if self.cfg.latency_bits >= 64 || latency < (1 << self.cfg.latency_bits) {
            latency
        } else {
            0
        }
    }

    fn train(&mut self, line: VLine, demand_at: Cycle, latency: u64) {
        let ctx = Self::context(line);
        let hits = self.history.search_timely(
            ctx,
            line,
            demand_at,
            latency,
            self.cfg.max_timely_deltas_per_search,
        );
        let ds: Vec<Delta> = hits.iter().map(|h| h.delta).collect();
        self.deltas.record_search(ctx, &ds);
    }
}

impl Prefetcher for BertiPage {
    fn name(&self) -> &'static str {
        "berti-page"
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage().total_bits()
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        let ctx = Self::context(ev.line);
        if !ev.hit {
            self.history.insert(ctx, ev.line, ev.at);
        } else if ev.timely_prefetch_hit || ev.late_prefetch_hit {
            self.history.insert(ctx, ev.line, ev.at);
            let latency = self.truncate_latency(ev.stored_latency);
            if latency != 0 {
                self.train(ev.line, ev.at, latency);
            }
        }
        self.scratch.clear();
        let mut preds = std::mem::take(&mut self.scratch);
        self.deltas.prefetch_deltas(ctx, &mut preds);
        for &(delta, status) in &preds {
            // Signed-space target: `VLine + Delta` wraps on underflow
            // (see the per-IP variant).
            let Some(raw) = ev.line.raw().checked_add_signed(i64::from(delta.raw())) else {
                self.dropped_underflow_target += 1;
                continue;
            };
            let target = VLine::new(raw);
            if !self.cfg.cross_page && target.page() != ev.line.page() {
                continue;
            }
            let fill_level = match status {
                DeltaStatus::L1Pref => {
                    if ev.mshr_occupancy < self.cfg.mshr_watermark {
                        FillLevel::L1
                    } else {
                        FillLevel::L2
                    }
                }
                DeltaStatus::L2Pref | DeltaStatus::L2PrefRepl => FillLevel::L2,
                DeltaStatus::LlcPref => FillLevel::Llc,
                DeltaStatus::NoPref => continue,
            };
            out.push(PrefetchDecision { target, fill_level });
        }
        self.scratch = preds;
    }

    fn on_fill(&mut self, ev: &FillEvent) {
        if ev.was_prefetch {
            return;
        }
        let latency = self.truncate_latency(ev.latency);
        if latency == 0 {
            return;
        }
        // Signed-space demand time; drop inconsistent samples instead
        // of clamping to cycle 0 (see the per-IP variant).
        let Some(demand_at) = ev.at.raw().checked_sub(latency) else {
            self.dropped_inconsistent_latency += 1;
            return;
        };
        self.train(ev.line, Cycle::new(demand_at), latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::AccessKind;

    fn miss(ip: u64, line: u64, at: u64) -> AccessEvent {
        AccessEvent {
            ip: Ip::new(ip),
            line: VLine::new(line),
            at: Cycle::new(at),
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    fn fill(line: u64, at: u64, lat: u64) -> FillEvent {
        FillEvent {
            line: VLine::new(line),
            ip: Ip::new(0),
            at: Cycle::new(at),
            latency: lat,
            was_prefetch: false,
        }
    }

    #[test]
    fn learns_within_a_page_regardless_of_ip() {
        // Two alternating IPs walk one page with stride +2: a per-IP
        // tracker sees stride +4 per IP, the per-page tracker sees the
        // full +2 stream.
        let mut p = BertiPage::new(BertiConfig::default());
        let mut out = Vec::new();
        let base = 64 * 1000;
        for i in 0..30u64 {
            let ip = if i % 2 == 0 { 0x400 } else { 0x900 };
            out.clear();
            p.on_access(&miss(ip, base + 2 * i, 300 * i), &mut out);
            p.on_fill(&fill(base + 2 * i, 300 * i + 100, 100));
        }
        assert!(!out.is_empty(), "page context must cover the merged stream");
    }

    #[test]
    fn interleaved_pages_learn_independently() {
        let mut p = BertiPage::new(BertiConfig::default());
        let mut out = Vec::new();
        // Page A strides +1; page B strides -2; one IP drives both.
        for i in 0..40u64 {
            let t = 600 * i;
            out.clear();
            p.on_access(&miss(0x400, 64 * 500 + i, t), &mut out);
            p.on_fill(&fill(64 * 500 + i, t + 100, 100));
            p.on_access(&miss(0x400, 64 * 900 - 2 * i, t + 300), &mut out);
            p.on_fill(&fill(64 * 900 - 2 * i, t + 400, 100));
        }
        let a = p
            .deltas
            .snapshot(BertiPage::context(VLine::new(64 * 500 + 39)));
        let b = p
            .deltas
            .snapshot(BertiPage::context(VLine::new(64 * 900 - 78)));
        assert!(a.iter().any(|d| d.delta.raw() > 0), "{a:?}");
        assert!(b.iter().any(|d| d.delta.raw() < 0), "{b:?}");
    }

    #[test]
    fn storage_matches_the_ip_variant() {
        let cfg = BertiConfig::default();
        assert_eq!(
            BertiPage::new(cfg).storage_bits(),
            crate::Berti::new(cfg).storage_bits()
        );
    }
}
