//! **Berti: an Accurate Local-Delta Data Prefetcher** (MICRO 2022) —
//! the paper's primary contribution, implemented against the
//! [`berti_mem::Prefetcher`] interface.
//!
//! Berti is an L1D prefetcher that, for each instruction pointer,
//! learns the *local deltas* (differences between cache-line addresses
//! of demand accesses by the same IP) that would have produced *timely*
//! prefetches, estimates each delta's *coverage*, and issues prefetch
//! requests only for deltas whose coverage crosses confidence
//! watermarks — filling to the L1D for high-coverage deltas (when the
//! MSHR is not saturated) and to the L2 for medium-coverage ones.
//!
//! The three hardware structures of Sec. III-C are reproduced exactly:
//!
//! - a [`HistoryTable`] (8 sets × 16 ways, FIFO) of recent accesses per
//!   IP, holding a 7-bit IP tag, a 24-bit line address, and a 16-bit
//!   timestamp;
//! - a [`DeltaTable`] (16 entries, fully associative, FIFO) holding a
//!   10-bit IP tag, a 4-bit search counter, and 16 deltas × (13-bit
//!   delta, 4-bit coverage, 2-bit status);
//! - the per-line 12-bit fetch-latency shadow field, which lives in the
//!   host cache ([`berti_mem::Cache`]).
//!
//! # Example
//!
//! ```
//! use berti_core::{Berti, BertiConfig};
//! use berti_mem::Prefetcher;
//!
//! let berti = Berti::new(BertiConfig::default());
//! // Table I: the paper's configuration costs 2.55 KB.
//! let kb = berti.storage_bits() as f64 / 8.0 / 1024.0;
//! assert!((kb - 2.55).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod berti;
mod deltas;
mod history;
mod page_variant;
mod storage;

pub use berti::Berti;
pub use deltas::{DeltaStatus, DeltaTable, LearnedDelta};
pub use history::{HistoryHit, HistoryTable};
pub use page_variant::BertiPage;
pub use storage::{BertiConfig, StorageBreakdown};
