//! The history table: recent demand accesses per IP (Sec. III-C,
//! "Learning timely deltas").
//!
//! An 8-set × 16-way cache, indexed by the IP and replaced FIFO within
//! a set. Each entry keeps a 7-bit IP tag, the 24 least-significant
//! bits of the accessed cache-line address, and a 16-bit timestamp.
//! Entries are inserted on demand misses and on first demand hits of
//! prefetched lines; searches return, youngest first, the entries by
//! the same IP whose timestamp is early enough that a prefetch issued
//! then would have been timely.

use berti_types::{Cycle, Delta, Ip, VLine};

/// Bits of the stored line address (Table I: 24).
const LINE_ADDR_BITS: u32 = 24;
/// Bits of the IP tag (Table I: 7, taken above the index bits).
const IP_TAG_BITS: u32 = 7;

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u16,
    /// 24 LSBs of the line address.
    line_lo: u32,
    /// Full cycle of insertion; comparisons apply the configured
    /// timestamp window to model the 16-bit hardware register.
    inserted_at: Cycle,
    valid: bool,
    /// `check-invariants`: global insertion sequence number, used to
    /// prove FIFO replacement. Timestamps cannot serve here — demand
    /// event times are stamped with variable translation latency and
    /// are not monotone across inserts.
    #[cfg(feature = "check-invariants")]
    seq: u64,
}

impl Default for Entry {
    fn default() -> Self {
        Self {
            tag: 0,
            line_lo: 0,
            inserted_at: Cycle::ZERO,
            valid: false,
            #[cfg(feature = "check-invariants")]
            seq: 0,
        }
    }
}

/// One timely access found by a history search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryHit {
    /// Delta from the recorded access to the current line (current −
    /// recorded, computed on the stored 24-bit line addresses).
    pub delta: Delta,
    /// When the recorded access happened.
    pub at: Cycle,
}

/// The history table.
#[derive(Clone, Debug)]
pub struct HistoryTable {
    sets: usize,
    ways: usize,
    timestamp_window: u64,
    entries: Vec<Entry>,
    /// FIFO insertion cursor per set.
    cursor: Vec<usize>,
    /// `check-invariants`: next global insertion sequence number.
    #[cfg(feature = "check-invariants")]
    next_seq: u64,
}

impl HistoryTable {
    /// Creates a history table with the given geometry and timestamp
    /// width in bits.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize, timestamp_bits: u32) -> Self {
        assert!(sets > 0 && ways > 0);
        Self {
            sets,
            ways,
            timestamp_window: if timestamp_bits >= 64 {
                u64::MAX
            } else {
                1u64 << timestamp_bits
            },
            entries: vec![Entry::default(); sets * ways],
            cursor: vec![0; sets],
            #[cfg(feature = "check-invariants")]
            next_seq: 0,
        }
    }

    #[inline]
    fn set_of(&self, ip: Ip) -> usize {
        // Skip the low 2 bits: neighbouring memory instructions are a
        // few bytes apart and would otherwise pile into one set.
        ((ip.raw() >> 2) % self.sets as u64) as usize
    }

    #[inline]
    fn tag_of(&self, ip: Ip) -> u16 {
        (((ip.raw() >> 2) / self.sets as u64) & ((1 << IP_TAG_BITS) - 1)) as u16
    }

    /// Records a demand access by `ip` to `line` at `now` (FIFO within
    /// the set).
    pub fn insert(&mut self, ip: Ip, line: VLine, now: Cycle) {
        let set = self.set_of(ip);
        let way = self.cursor[set];
        self.cursor[set] = (way + 1) % self.ways;
        // `check-invariants`: FIFO ordering — the overwritten way must
        // hold the oldest valid entry of the set (by insertion
        // sequence, not timestamp; event times are not monotone).
        #[cfg(feature = "check-invariants")]
        let seq = {
            let base = set * self.ways;
            if self.entries[base + way].valid {
                let oldest = (0..self.ways)
                    .filter(|&w| self.entries[base + w].valid)
                    .map(|w| self.entries[base + w].seq)
                    .min()
                    .expect("victim is valid");
                assert_eq!(
                    self.entries[base + way].seq,
                    oldest,
                    "history FIFO must overwrite the oldest entry in set {set}"
                );
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            seq
        };
        self.entries[set * self.ways + way] = Entry {
            tag: self.tag_of(ip),
            line_lo: (line.raw() & ((1 << LINE_ADDR_BITS) - 1)) as u32,
            inserted_at: now,
            valid: true,
            #[cfg(feature = "check-invariants")]
            seq,
        };
    }

    /// Searches for accesses by `ip` that would have produced a timely
    /// prefetch for a demand of `line` at `demand_at` with measured
    /// fetch latency `latency`: entries no younger than
    /// `demand_at − latency` (Sec. III-A, Fig. 4). At most `max_hits`
    /// results are returned, youngest first; zero deltas are skipped.
    pub fn search_timely(
        &self,
        ip: Ip,
        line: VLine,
        demand_at: Cycle,
        latency: u64,
        max_hits: usize,
    ) -> Vec<HistoryHit> {
        let mut hits = Vec::with_capacity(self.ways);
        self.search_timely_into(ip, line, demand_at, latency, max_hits, &mut hits);
        hits
    }

    /// [`HistoryTable::search_timely`] into a caller-owned buffer: the
    /// hot path reuses one scratch vector across misses, so steady-state
    /// training performs no heap allocation. `out` is cleared first and
    /// never grows past the set's way count.
    ///
    /// Ordering matches the allocating variant exactly: a *stable*
    /// insertion sort, youngest first — entries with equal timestamps
    /// keep way order, as `sort_by_key(Reverse(at))` (stable) did.
    pub fn search_timely_into(
        &self,
        ip: Ip,
        line: VLine,
        demand_at: Cycle,
        latency: u64,
        max_hits: usize,
        out: &mut Vec<HistoryHit>,
    ) {
        out.clear();
        let cutoff = demand_at.raw().saturating_sub(latency);
        let set = self.set_of(ip);
        let tag = self.tag_of(ip);
        let line_lo = (line.raw() & ((1 << LINE_ADDR_BITS) - 1)) as i64;
        for way in 0..self.ways {
            let e = &self.entries[set * self.ways + way];
            if !e.valid || e.tag != tag {
                continue;
            }
            let t = e.inserted_at.raw();
            // A 16-bit timestamp can only be compared within its wrap
            // window; older entries are stale in hardware.
            if t > cutoff || demand_at.raw().saturating_sub(t) >= self.timestamp_window {
                continue;
            }
            // Delta on the stored 24-bit addresses, wrap-aware.
            let mut d = line_lo - i64::from(e.line_lo);
            let half = 1i64 << (LINE_ADDR_BITS - 1);
            if d > half {
                d -= 1i64 << LINE_ADDR_BITS;
            } else if d < -half {
                d += 1i64 << LINE_ADDR_BITS;
            }
            if d == 0 {
                continue;
            }
            let hit = HistoryHit {
                delta: Delta::saturating(d),
                at: e.inserted_at,
            };
            // Stable insertion, youngest first: shift only strictly
            // older entries so equal timestamps keep way order.
            let mut i = out.len();
            out.push(hit);
            while i > 0 && out[i - 1].at < hit.at {
                out[i] = out[i - 1];
                i -= 1;
            }
            out[i] = hit;
        }
        // The hardware collects the youngest `max_hits`.
        out.truncate(max_hits);
    }

    /// Total entries (diagnostics).
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HistoryTable {
        HistoryTable::new(8, 16, 16)
    }

    const IP: Ip = Ip::new(0x401cb0);

    #[test]
    fn finds_timely_deltas_like_figure_4() {
        // Fig. 4: same IP accesses lines 2, 5, 7, 10, 12, 15; latency
        // such that only sufficiently old accesses are timely.
        let mut h = table();
        // (line, time): 2@0, 5@10, 7@20, 10@30, 12@40.
        for (line, t) in [(2, 0), (5, 10), (7, 20), (10, 30), (12, 40)] {
            h.insert(IP, VLine::new(line), Cycle::new(t));
        }
        // Demand of line 15 at t=50 with latency 35: timely cutoff is
        // t ≤ 15, i.e. lines 2 (delta +13) and 5 (delta +10).
        let hits = h.search_timely(IP, VLine::new(15), Cycle::new(50), 35, 8);
        let deltas: Vec<i32> = hits.iter().map(|x| x.delta.raw()).collect();
        assert_eq!(deltas, vec![10, 13], "youngest (line 5) first");
    }

    #[test]
    fn no_previous_access_no_deltas() {
        let mut h = table();
        h.insert(IP, VLine::new(10), Cycle::new(100));
        // Cutoff excludes everything: latency spans the entire history.
        let hits = h.search_timely(IP, VLine::new(12), Cycle::new(110), 50, 8);
        assert!(hits.is_empty());
    }

    #[test]
    fn different_ip_is_invisible() {
        let mut h = table();
        h.insert(Ip::new(0x1111), VLine::new(2), Cycle::new(0));
        let hits = h.search_timely(IP, VLine::new(15), Cycle::new(100), 10, 8);
        assert!(hits.is_empty());
    }

    #[test]
    fn fifo_overwrites_oldest_within_set() {
        let mut h = HistoryTable::new(1, 2, 16);
        h.insert(IP, VLine::new(1), Cycle::new(0));
        h.insert(IP, VLine::new(2), Cycle::new(1));
        h.insert(IP, VLine::new(3), Cycle::new(2)); // evicts line 1
        let hits = h.search_timely(IP, VLine::new(10), Cycle::new(100), 10, 8);
        let deltas: Vec<i32> = hits.iter().map(|x| x.delta.raw()).collect();
        assert_eq!(deltas, vec![7, 8], "line 1 must be gone");
    }

    #[test]
    fn max_hits_keeps_youngest() {
        let mut h = table();
        for i in 0..10 {
            h.insert(IP, VLine::new(i), Cycle::new(i));
        }
        let hits = h.search_timely(IP, VLine::new(100), Cycle::new(1000), 10, 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].at, Cycle::new(9));
        assert_eq!(hits[2].at, Cycle::new(7));
    }

    #[test]
    fn zero_delta_skipped() {
        let mut h = table();
        h.insert(IP, VLine::new(15), Cycle::new(0));
        let hits = h.search_timely(IP, VLine::new(15), Cycle::new(100), 10, 8);
        assert!(hits.is_empty(), "re-access of the same line is not a delta");
    }

    #[test]
    fn negative_deltas_found() {
        let mut h = table();
        h.insert(IP, VLine::new(100), Cycle::new(0));
        let hits = h.search_timely(IP, VLine::new(95), Cycle::new(100), 10, 8);
        assert_eq!(hits[0].delta.raw(), -5);
    }

    #[test]
    fn timestamp_window_expires_ancient_entries() {
        let mut h = HistoryTable::new(8, 16, 16);
        h.insert(IP, VLine::new(2), Cycle::new(0));
        // 2^16 cycles later the 16-bit timestamp has wrapped.
        let hits = h.search_timely(IP, VLine::new(15), Cycle::new(70_000), 10, 8);
        assert!(hits.is_empty());
        // A 64-bit window keeps it.
        let mut wide = HistoryTable::new(8, 16, 64);
        wide.insert(IP, VLine::new(2), Cycle::new(0));
        let hits = wide.search_timely(IP, VLine::new(15), Cycle::new(70_000), 10, 8);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn out_of_order_accesses_still_yield_all_deltas() {
        // Sec. II-B: reordered 1,3,2,4,5,6 — later searches see all
        // pairwise deltas regardless of order.
        let mut h = table();
        for (line, t) in [(1, 0), (3, 10), (2, 20), (4, 30), (5, 40), (6, 50)] {
            h.insert(IP, VLine::new(line), Cycle::new(t));
        }
        // Demand at t=100 with latency 45: cutoff 55 admits all six
        // recorded accesses, producing every pairwise delta to line 7.
        let hits = h.search_timely(IP, VLine::new(7), Cycle::new(100), 45, 8);
        let mut deltas: Vec<i32> = hits.iter().map(|x| x.delta.raw()).collect();
        deltas.sort_unstable();
        assert_eq!(deltas, vec![1, 2, 3, 4, 5, 6]);
    }
}
