//! The table of deltas: per-IP delta coverage and prefetch statuses
//! (Sec. III-C, "Computing the coverage of deltas").
//!
//! A 16-entry fully-associative, FIFO-replaced table. Each entry keeps
//! a 10-bit IP tag, a 4-bit search counter, and 16 delta slots of
//! (13-bit delta, 4-bit coverage, 2-bit status). Every history search
//! bumps the counter; every timely delta found bumps its slot's
//! coverage. When the counter overflows (16 searches), coverage is
//! converted into statuses against the watermarks, and a new learning
//! phase begins.

use berti_types::{Delta, Ip};

use crate::storage::BertiConfig;

/// Prefetch status of a learned delta (the 2-bit field of Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaStatus {
    /// Do not prefetch with this delta.
    NoPref,
    /// Prefetch filling only the LLC (low-coverage tier; the paper
    /// evaluates this option and disables it by setting the low
    /// watermark equal to the medium one, Sec. III-C).
    LlcPref,
    /// Prefetch filling to L2, and the delta is a replacement candidate
    /// (its selection coverage was below 50 %).
    L2PrefRepl,
    /// Prefetch filling to L2.
    L2Pref,
    /// Prefetch filling to L1D (subject to the MSHR watermark).
    L1Pref,
}

impl DeltaStatus {
    /// Whether this status issues prefetch requests.
    pub fn prefetches(self) -> bool {
        self != DeltaStatus::NoPref
    }

    /// Whether the slot may be stolen for a newly observed delta.
    fn replaceable(self) -> bool {
        matches!(
            self,
            DeltaStatus::NoPref | DeltaStatus::L2PrefRepl | DeltaStatus::LlcPref
        )
    }
}

/// A delta with its current learning state (diagnostics/examples).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LearnedDelta {
    /// The delta.
    pub delta: Delta,
    /// Coverage counter in the current phase.
    pub coverage: u32,
    /// Status assigned at the last phase boundary.
    pub status: DeltaStatus,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    delta: Delta,
    coverage: u32,
    status: DeltaStatus,
    valid: bool,
}

impl Default for Slot {
    fn default() -> Self {
        Self {
            delta: Delta::ZERO,
            coverage: 0,
            status: DeltaStatus::NoPref,
            valid: false,
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    tag: u16,
    counter: u32,
    slots: Vec<Slot>,
    phase_completed: bool,
    valid: bool,
}

/// The table of deltas.
#[derive(Clone, Debug)]
pub struct DeltaTable {
    entries: Vec<Entry>,
    cursor: usize,
    rounds_per_phase: u32,
    high: f64,
    medium: f64,
    low: f64,
    replaceable: f64,
    warmup: f64,
    warmup_min_rounds: u32,
    max_prefetch_deltas: usize,
    delta_bits: u32,
    /// Reused per-search dedup buffer ([`DeltaTable::record_search`]):
    /// sized once, so steady-state training allocates nothing.
    scratch_seen: Vec<Delta>,
    /// Reused phase-boundary ranking buffer ([`DeltaTable::end_phase`]).
    scratch_order: Vec<usize>,
}

impl DeltaTable {
    /// Creates the table from the Berti configuration.
    pub fn new(cfg: &BertiConfig) -> Self {
        let empty = Entry {
            tag: 0,
            counter: 0,
            slots: vec![Slot::default(); cfg.deltas_per_entry],
            phase_completed: false,
            valid: false,
        };
        Self {
            entries: vec![empty; cfg.delta_table_entries],
            cursor: 0,
            rounds_per_phase: cfg.rounds_per_phase,
            high: cfg.high_watermark,
            medium: cfg.medium_watermark,
            low: cfg.low_watermark,
            replaceable: cfg.replaceable_watermark,
            warmup: cfg.warmup_watermark,
            warmup_min_rounds: cfg.warmup_min_rounds,
            max_prefetch_deltas: cfg.max_prefetch_deltas,
            delta_bits: cfg.delta_bits,
            scratch_seen: Vec::with_capacity(cfg.deltas_per_entry),
            scratch_order: Vec::with_capacity(cfg.deltas_per_entry),
        }
    }

    fn tag_of(ip: Ip) -> u16 {
        // 10-bit multiplicative hash (Fibonacci hashing). A xor-fold is
        // too weak here: nearby code addresses collide easily, and a
        // collision makes two IPs share one entry, halving both IPs'
        // measured coverage.
        (ip.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) as u16
    }

    fn find(&self, ip: Ip) -> Option<usize> {
        let tag = Self::tag_of(ip);
        self.entries.iter().position(|e| e.valid && e.tag == tag)
    }

    fn find_or_allocate(&mut self, ip: Ip) -> usize {
        if let Some(i) = self.find(ip) {
            return i;
        }
        // Fully-associative FIFO replacement; the entry is reset in
        // place so its slot storage is reused, not reallocated.
        let i = self.cursor;
        self.cursor = (self.cursor + 1) % self.entries.len();
        let e = &mut self.entries[i];
        e.tag = Self::tag_of(ip);
        e.counter = 0;
        for s in &mut e.slots {
            *s = Slot::default();
        }
        e.phase_completed = false;
        e.valid = true;
        i
    }

    /// Accounts one history search for `ip` that found `timely_deltas`
    /// (deduplicated per search: coverage is the fraction of searches a
    /// delta appears in). Triggers a phase boundary when the 4-bit
    /// counter overflows.
    pub fn record_search(&mut self, ip: Ip, timely_deltas: &[Delta]) {
        let i = self.find_or_allocate(ip);
        self.entries[i].counter += 1;
        let mut seen = std::mem::take(&mut self.scratch_seen);
        seen.clear();
        for &d in timely_deltas {
            if d == Delta::ZERO || !d.fits_bits(self.delta_bits) || seen.contains(&d) {
                continue;
            }
            seen.push(d);
            self.bump_delta(i, d);
        }
        self.scratch_seen = seen;
        if self.entries[i].counter >= self.rounds_per_phase {
            self.end_phase(i);
        }
        self.check_entry_invariant(i);
    }

    /// `check-invariants`: structural consistency of one entry after a
    /// search — the 4-bit counter stays below a phase, per-slot coverage
    /// never exceeds the searches that could have bumped it, valid slots
    /// hold representable nonzero deltas, and the number of
    /// prefetch-issuing statuses respects the selection bound.
    #[cfg(feature = "check-invariants")]
    fn check_entry_invariant(&self, i: usize) {
        let e = &self.entries[i];
        if !e.valid {
            return;
        }
        assert!(
            e.counter < self.rounds_per_phase,
            "delta-table counter {} must reset at the phase bound {}",
            e.counter,
            self.rounds_per_phase
        );
        let mut prefetching = 0usize;
        for s in e.slots.iter().filter(|s| s.valid) {
            assert!(s.delta != Delta::ZERO, "valid slot with zero delta");
            assert!(
                s.delta.fits_bits(self.delta_bits),
                "slot delta {:?} does not fit {} bits",
                s.delta,
                self.delta_bits
            );
            assert!(
                s.coverage <= e.counter,
                "slot coverage {} exceeds searches this phase {}",
                s.coverage,
                e.counter
            );
            if s.status.prefetches() {
                prefetching += 1;
            }
        }
        assert!(
            prefetching <= self.max_prefetch_deltas,
            "{prefetching} prefetching slots exceed the bound {}",
            self.max_prefetch_deltas
        );
    }

    #[cfg(not(feature = "check-invariants"))]
    #[inline(always)]
    fn check_entry_invariant(&self, _i: usize) {}

    fn bump_delta(&mut self, entry: usize, d: Delta) {
        let rounds = self.rounds_per_phase;
        let e = &mut self.entries[entry];
        if let Some(s) = e.slots.iter_mut().find(|s| s.valid && s.delta == d) {
            s.coverage = (s.coverage + 1).min(rounds);
            return;
        }
        if let Some(s) = e.slots.iter_mut().find(|s| !s.valid) {
            *s = Slot {
                delta: d,
                coverage: 1,
                status: DeltaStatus::NoPref,
                valid: true,
            };
            return;
        }
        // Evict the lowest-coverage replaceable slot, if any; otherwise
        // the new delta is discarded (Sec. III-C).
        if let Some(victim) = e
            .slots
            .iter_mut()
            .filter(|s| s.status.replaceable())
            .min_by_key(|s| s.coverage)
        {
            *victim = Slot {
                delta: d,
                coverage: 1,
                status: DeltaStatus::NoPref,
                valid: true,
            };
        }
    }

    /// Phase boundary: convert coverage into statuses, bounded to
    /// `max_prefetch_deltas` selections, then reset the counters.
    fn end_phase(&mut self, entry: usize) {
        let rounds = f64::from(self.rounds_per_phase);
        let high = self.high;
        let medium = self.medium;
        let low = self.low;
        let replaceable = self.replaceable;
        let max_sel = self.max_prefetch_deltas;
        let mut order = std::mem::take(&mut self.scratch_order);
        let e = &mut self.entries[entry];
        // Rank slots by coverage, highest first, to apply the selection
        // bound. The ranking buffer is reused across phase boundaries
        // and sorted with a manual *stable* insertion sort (equal
        // coverage keeps slot order, exactly as the allocating stable
        // `sort_by_key(Reverse(coverage))` did; `std`'s stable sort may
        // heap-allocate its merge buffer).
        order.clear();
        order.extend((0..e.slots.len()).filter(|&i| e.slots[i].valid));
        for k in 1..order.len() {
            let idx = order[k];
            let cov = e.slots[idx].coverage;
            let mut j = k;
            while j > 0 && e.slots[order[j - 1]].coverage < cov {
                order[j] = order[j - 1];
                j -= 1;
            }
            order[j] = idx;
        }
        let mut selected = 0usize;
        for &i in &order {
            let cov = e.slots[i].coverage as f64 / rounds;
            let status = if selected < max_sel && cov > high {
                DeltaStatus::L1Pref
            } else if selected < max_sel && cov > medium {
                if cov < replaceable {
                    DeltaStatus::L2PrefRepl
                } else {
                    DeltaStatus::L2Pref
                }
            } else if selected < max_sel && cov > low {
                // Only reachable when the low watermark is configured
                // below the medium one (the paper's disabled LLC tier).
                DeltaStatus::LlcPref
            } else {
                DeltaStatus::NoPref
            };
            if status.prefetches() {
                selected += 1;
            }
            // `check-invariants`: a slot's assigned status must be
            // consistent with its coverage and the watermarks (guards
            // against watermark-comparison regressions).
            #[cfg(feature = "check-invariants")]
            {
                match status {
                    DeltaStatus::L1Pref => assert!(cov > high),
                    DeltaStatus::L2Pref => assert!(cov > medium && cov >= replaceable),
                    DeltaStatus::L2PrefRepl => assert!(cov > medium && cov < replaceable),
                    DeltaStatus::LlcPref => assert!(cov > low && cov <= medium),
                    DeltaStatus::NoPref => {}
                }
                assert!(selected <= max_sel, "selection bound exceeded");
            }
            e.slots[i].status = status;
        }
        for s in &mut e.slots {
            s.coverage = 0;
        }
        e.counter = 0;
        e.phase_completed = true;
        self.scratch_order = order;
    }

    /// The deltas `ip` should prefetch with right now, with the status
    /// governing the fill level. During warm-up (before the first phase
    /// boundary) deltas need `warmup_watermark` of the searches so far
    /// and at least `warmup_min_rounds` searches (Sec. III-C).
    pub fn prefetch_deltas(&self, ip: Ip, out: &mut Vec<(Delta, DeltaStatus)>) {
        let Some(i) = self.find(ip) else {
            return;
        };
        let e = &self.entries[i];
        if e.phase_completed {
            for s in e.slots.iter().filter(|s| s.valid && s.status.prefetches()) {
                out.push((s.delta, s.status));
            }
        } else if e.counter >= self.warmup_min_rounds {
            let c = f64::from(e.counter);
            for s in e.slots.iter().filter(|s| s.valid) {
                if s.coverage as f64 / c >= self.warmup {
                    out.push((s.delta, DeltaStatus::L1Pref));
                }
            }
        }
    }

    /// Current learning state for `ip` (diagnostics, Fig. 3).
    pub fn snapshot(&self, ip: Ip) -> Vec<LearnedDelta> {
        let Some(i) = self.find(ip) else {
            return Vec::new();
        };
        self.entries[i]
            .slots
            .iter()
            .filter(|s| s.valid)
            .map(|s| LearnedDelta {
                delta: s.delta,
                coverage: s.coverage,
                status: s.status,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: Ip = Ip::new(0x4049de);

    fn table() -> DeltaTable {
        DeltaTable::new(&BertiConfig::default())
    }

    fn run_phase(t: &mut DeltaTable, ip: Ip, deltas_per_search: &[i32], searches: u32) {
        let ds: Vec<Delta> = deltas_per_search.iter().map(|&d| Delta::new(d)).collect();
        for _ in 0..searches {
            t.record_search(ip, &ds);
        }
    }

    #[test]
    fn high_coverage_delta_becomes_l1pref() {
        let mut t = table();
        run_phase(&mut t, IP, &[10], 16); // 16/16 coverage
        let snap = t.snapshot(IP);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].status, DeltaStatus::L1Pref);
        let mut out = Vec::new();
        t.prefetch_deltas(IP, &mut out);
        assert_eq!(out, vec![(Delta::new(10), DeltaStatus::L1Pref)]);
    }

    #[test]
    fn medium_coverage_becomes_l2pref_and_low_becomes_nopref() {
        let mut t = table();
        // Delta 3 in 10/16 searches (62.5% -> L2Pref, >= 50% so not repl);
        // delta 5 in 4/16 (25% -> NoPref).
        for i in 0..16 {
            let mut ds = Vec::new();
            if i < 10 {
                ds.push(Delta::new(3));
            }
            if i < 4 {
                ds.push(Delta::new(5));
            }
            t.record_search(IP, &ds);
        }
        let snap = t.snapshot(IP);
        let status_of = |d: i32| {
            snap.iter()
                .find(|s| s.delta == Delta::new(d))
                .expect("delta recorded")
                .status
        };
        assert_eq!(status_of(3), DeltaStatus::L2Pref);
        assert_eq!(status_of(5), DeltaStatus::NoPref);
    }

    #[test]
    fn low_selection_coverage_marks_replaceable() {
        let mut t = table();
        // 7/16 = 43.75%: above medium (35%), below replaceable (50%).
        for i in 0..16 {
            let ds = if i < 7 { vec![Delta::new(4)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::L2PrefRepl);
    }

    #[test]
    fn boundary_values_match_paper_thresholds() {
        // "a coverage value higher than 10" -> L1; exactly 10 -> L2.
        let mut t = table();
        for i in 0..16 {
            let ds = if i < 10 { vec![Delta::new(2)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::L2Pref);
        let mut t = table();
        for i in 0..16 {
            let ds = if i < 11 { vec![Delta::new(2)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::L1Pref);
        // "lower or equal than 10 and higher than 5": exactly 6 -> L2PrefRepl
        // (37.5% is below the 50% replaceable mark); exactly 5 -> NoPref.
        let mut t = table();
        for i in 0..16 {
            let ds = if i < 6 { vec![Delta::new(2)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::L2PrefRepl);
        let mut t = table();
        for i in 0..16 {
            let ds = if i < 5 { vec![Delta::new(2)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::NoPref);
    }

    #[test]
    fn warmup_issues_only_above_80_percent() {
        let mut t = table();
        // 8 searches, delta +7 in all 8 (100%), delta +9 in 6 (75%).
        for i in 0..8 {
            let mut ds = vec![Delta::new(7)];
            if i < 6 {
                ds.push(Delta::new(9));
            }
            t.record_search(IP, &ds);
        }
        let mut out = Vec::new();
        t.prefetch_deltas(IP, &mut out);
        assert_eq!(out, vec![(Delta::new(7), DeltaStatus::L1Pref)]);
    }

    #[test]
    fn no_warmup_prefetch_before_min_rounds() {
        let mut t = table();
        run_phase(&mut t, IP, &[7], 7); // only 7 searches
        let mut out = Vec::new();
        t.prefetch_deltas(IP, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn statuses_persist_into_next_phase_until_boundary() {
        let mut t = table();
        run_phase(&mut t, IP, &[10], 16);
        // Mid-phase: 5 more searches with a different delta.
        run_phase(&mut t, IP, &[4], 5);
        let mut out = Vec::new();
        t.prefetch_deltas(IP, &mut out);
        assert!(
            out.contains(&(Delta::new(10), DeltaStatus::L1Pref)),
            "previous-phase status must keep prefetching mid-phase"
        );
        assert!(!out.iter().any(|(d, _)| *d == Delta::new(4)));
    }

    #[test]
    fn selection_bounded_to_max_prefetch_deltas() {
        let cfg = BertiConfig {
            deltas_per_entry: 16,
            max_prefetch_deltas: 12,
            ..BertiConfig::default()
        };
        let mut t = DeltaTable::new(&cfg);
        // 14 deltas, all 100% coverage.
        let ds: Vec<i32> = (1..=14).collect();
        run_phase(&mut t, IP, &ds, 16);
        let mut out = Vec::new();
        t.prefetch_deltas(IP, &mut out);
        assert_eq!(out.len(), 12, "at most 12 deltas may be selected");
    }

    #[test]
    fn full_entry_evicts_replaceable_lowest_coverage() {
        let cfg = BertiConfig {
            deltas_per_entry: 2,
            ..BertiConfig::default()
        };
        let mut t = DeltaTable::new(&cfg);
        // Phase 1: delta 1 strong (L1Pref), delta 2 weak (NoPref).
        for i in 0..16 {
            let mut ds = vec![Delta::new(1)];
            if i < 2 {
                ds.push(Delta::new(2));
            }
            t.record_search(IP, &ds);
        }
        // New delta 3 arrives: must displace delta 2 (NoPref), not delta 1.
        t.record_search(IP, &[Delta::new(3)]);
        let snap = t.snapshot(IP);
        let deltas: Vec<i32> = snap.iter().map(|s| s.delta.raw()).collect();
        assert!(deltas.contains(&1));
        assert!(deltas.contains(&3));
        assert!(!deltas.contains(&2));
    }

    #[test]
    fn unreplaceable_full_entry_discards_new_delta() {
        let cfg = BertiConfig {
            deltas_per_entry: 2,
            ..BertiConfig::default()
        };
        let mut t = DeltaTable::new(&cfg);
        run_phase(&mut t, IP, &[1, 2], 16); // both become L1Pref
        t.record_search(IP, &[Delta::new(3)]);
        let snap = t.snapshot(IP);
        assert!(!snap.iter().any(|s| s.delta == Delta::new(3)));
    }

    #[test]
    fn fifo_entry_replacement_under_ip_pressure() {
        let cfg = BertiConfig {
            delta_table_entries: 2,
            ..BertiConfig::default()
        };
        let mut t = DeltaTable::new(&cfg);
        run_phase(&mut t, Ip::new(100), &[1], 16);
        run_phase(&mut t, Ip::new(200), &[2], 16);
        run_phase(&mut t, Ip::new(300), &[3], 16); // evicts IP 100
        assert!(t.snapshot(Ip::new(100)).is_empty());
        assert!(!t.snapshot(Ip::new(200)).is_empty());
        assert!(!t.snapshot(Ip::new(300)).is_empty());
    }

    #[test]
    fn oversized_deltas_rejected() {
        let mut t = table();
        run_phase(&mut t, IP, &[5000], 16); // doesn't fit 13 bits
        assert!(t.snapshot(IP).is_empty());
    }

    #[test]
    fn duplicate_deltas_in_one_search_count_once() {
        let mut t = table();
        for _ in 0..16 {
            t.record_search(IP, &[Delta::new(5), Delta::new(5)]);
        }
        // If double-counted, coverage would overflow past rounds and the
        // phase math would be wrong; status must be plain L1Pref.
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::L1Pref);
    }
}

#[cfg(test)]
mod llc_tier_tests {
    use super::*;

    const IP: Ip = Ip::new(0x4049de);

    #[test]
    fn llc_tier_activates_only_below_medium_watermark() {
        let cfg = BertiConfig {
            low_watermark: 0.10, // enable the LLC tier
            ..BertiConfig::default()
        };
        let mut t = DeltaTable::new(&cfg);
        // Coverage 4/16 = 25%: between low (10%) and medium (35%).
        for i in 0..16 {
            let ds = if i < 4 { vec![Delta::new(9)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::LlcPref);
        // With the paper's default (low == medium) the same coverage is
        // NoPref.
        let mut t = DeltaTable::new(&BertiConfig::default());
        for i in 0..16 {
            let ds = if i < 4 { vec![Delta::new(9)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        assert_eq!(t.snapshot(IP)[0].status, DeltaStatus::NoPref);
    }

    #[test]
    fn llc_slots_are_replacement_candidates() {
        let cfg = BertiConfig {
            low_watermark: 0.10,
            deltas_per_entry: 1,
            ..BertiConfig::default()
        };
        let mut t = DeltaTable::new(&cfg);
        for i in 0..16 {
            let ds = if i < 4 { vec![Delta::new(9)] } else { vec![] };
            t.record_search(IP, &ds);
        }
        // A new delta may steal the LlcPref slot.
        t.record_search(IP, &[Delta::new(3)]);
        assert_eq!(t.snapshot(IP)[0].delta, Delta::new(3));
    }
}
