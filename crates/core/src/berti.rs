//! The Berti prefetcher: training and prediction (Sec. III-A/B) wired
//! to the [`berti_mem::Prefetcher`] interface.

use berti_mem::{AccessEvent, FillEvent, PrefetchDecision, Prefetcher};
use berti_types::{Cycle, Delta, FillLevel, Ip, VLine};

use crate::deltas::{DeltaStatus, DeltaTable, LearnedDelta};
use crate::history::{HistoryHit, HistoryTable};
use crate::storage::BertiConfig;

/// The Berti accurate local-delta L1D data prefetcher.
///
/// # Example
///
/// ```
/// use berti_core::{Berti, BertiConfig};
/// use berti_mem::Prefetcher;
///
/// let mut berti = Berti::new(BertiConfig::default());
/// assert_eq!(berti.name(), "berti");
/// ```
#[derive(Clone, Debug)]
pub struct Berti {
    cfg: BertiConfig,
    history: HistoryTable,
    deltas: DeltaTable,
    scratch_deltas: Vec<Delta>,
    scratch_pred: Vec<(Delta, DeltaStatus)>,
    scratch_hits: Vec<HistoryHit>,
    /// Fills whose measured latency exceeded the fill cycle; training
    /// with a clamped cycle-0 demand time would mislearn, so such fills
    /// are dropped and counted instead.
    dropped_inconsistent_latency: u64,
    /// Predictions whose target would underflow the line-address space
    /// (a negative delta larger than the trigger line); issuing them
    /// would wrap to a garbage address whose page check is meaningless.
    dropped_underflow_target: u64,
}

impl Berti {
    /// Creates a Berti prefetcher.
    pub fn new(cfg: BertiConfig) -> Self {
        Self {
            history: HistoryTable::new(cfg.history_sets, cfg.history_ways, cfg.timestamp_bits),
            deltas: DeltaTable::new(&cfg),
            scratch_deltas: Vec::new(),
            scratch_pred: Vec::new(),
            scratch_hits: Vec::with_capacity(cfg.max_timely_deltas_per_search),
            cfg,
            dropped_inconsistent_latency: 0,
            dropped_underflow_target: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BertiConfig {
        &self.cfg
    }

    /// Diagnostic counters: `(fills dropped for latency > fill cycle,
    /// predictions dropped for line-address underflow)`.
    pub fn drop_counters(&self) -> (u64, u64) {
        (
            self.dropped_inconsistent_latency,
            self.dropped_underflow_target,
        )
    }

    /// Current learning state for `ip` (Fig. 3 diagnostics).
    pub fn learned_deltas(&self, ip: Ip) -> Vec<LearnedDelta> {
        self.deltas.snapshot(ip)
    }

    /// Applies the configured latency-field width: values that do not
    /// fit are recorded as zero and skipped (Sec. III-C and the
    /// latency-counter sensitivity study of Sec. IV-J).
    fn truncate_latency(&self, latency: u64) -> u64 {
        if self.cfg.latency_bits >= 64 || latency < (1 << self.cfg.latency_bits) {
            latency
        } else {
            0
        }
    }

    /// One training step: search the history for timely deltas for a
    /// demand of `line` at `demand_at` with fetch latency `latency`,
    /// and account the search in the table of deltas.
    fn train(&mut self, ip: Ip, line: VLine, demand_at: Cycle, latency: u64) {
        let mut hits = std::mem::take(&mut self.scratch_hits);
        self.history.search_timely_into(
            ip,
            line,
            demand_at,
            latency,
            self.cfg.max_timely_deltas_per_search,
            &mut hits,
        );
        self.scratch_deltas.clear();
        self.scratch_deltas.extend(hits.iter().map(|h| h.delta));
        self.scratch_hits = hits;
        let ds = std::mem::take(&mut self.scratch_deltas);
        self.deltas.record_search(ip, &ds);
        self.scratch_deltas = ds;
    }

    /// Prediction: emit one prefetch per selected delta for this access.
    fn predict(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        self.scratch_pred.clear();
        let mut preds = std::mem::take(&mut self.scratch_pred);
        self.deltas.prefetch_deltas(ev.ip, &mut preds);
        for &(delta, status) in &preds {
            // Compute the target in signed space: `VLine + Delta` wraps
            // on underflow, so a negative delta larger than the trigger
            // line would produce a garbage address whose page
            // comparison (and prefetch) is meaningless.
            let Some(raw) = ev.line.raw().checked_add_signed(i64::from(delta.raw())) else {
                self.dropped_underflow_target += 1;
                continue;
            };
            let target = VLine::new(raw);
            if !self.cfg.cross_page && target.page() != ev.line.page() {
                continue;
            }
            let fill_level = match status {
                DeltaStatus::L1Pref => {
                    if ev.mshr_occupancy < self.cfg.mshr_watermark {
                        FillLevel::L1
                    } else {
                        FillLevel::L2
                    }
                }
                DeltaStatus::L2Pref | DeltaStatus::L2PrefRepl => FillLevel::L2,
                DeltaStatus::LlcPref => FillLevel::Llc,
                DeltaStatus::NoPref => continue,
            };
            out.push(PrefetchDecision { target, fill_level });
        }
        self.scratch_pred = preds;
    }
}

impl Prefetcher for Berti {
    fn name(&self) -> &'static str {
        "berti"
    }

    fn storage_bits(&self) -> u64 {
        self.cfg.storage().total_bits()
    }

    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchDecision>) {
        if !ev.kind.is_demand() {
            return;
        }
        if !ev.hit {
            // Demand miss: record the access now; the timely-delta
            // search happens when the fill latency is known (on_fill).
            self.history.insert(ev.ip, ev.line, ev.at);
        } else if ev.timely_prefetch_hit || ev.late_prefetch_hit {
            // First demand touch of a prefetched line — a miss the
            // baseline would have had. Record it and search immediately
            // using the latency stored alongside the line.
            self.history.insert(ev.ip, ev.line, ev.at);
            let latency = self.truncate_latency(ev.stored_latency);
            if latency != 0 {
                self.train(ev.ip, ev.line, ev.at, latency);
            }
        }
        // "On every L1D access, the table of deltas is searched" —
        // prediction runs for hits and misses alike (Sec. III-C).
        self.predict(ev, out);
    }

    fn on_fill(&mut self, ev: &FillEvent) {
        // Berti does not learn deltas on prefetch-caused fills, since
        // the demand time is not known yet (Sec. III-A).
        if ev.was_prefetch {
            return;
        }
        let latency = self.truncate_latency(ev.latency);
        if latency == 0 {
            return;
        }
        // Recover the demand time in signed space. A latency larger
        // than the fill cycle is inconsistent (the demand would predate
        // cycle 0); clamping it to 0, as a saturating subtraction would,
        // silently widens the timeliness window and mislearns deltas —
        // drop the sample and count it instead.
        let Some(demand_at) = ev.at.raw().checked_sub(latency) else {
            self.dropped_inconsistent_latency += 1;
            return;
        };
        self.train(ev.ip, ev.line, Cycle::new(demand_at), latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use berti_types::AccessKind;

    const IP: Ip = Ip::new(0x4049de);

    fn miss_event(line: u64, at: u64) -> AccessEvent {
        AccessEvent {
            ip: IP,
            line: VLine::new(line),
            at: Cycle::new(at),
            kind: AccessKind::Load,
            hit: false,
            timely_prefetch_hit: false,
            late_prefetch_hit: false,
            stored_latency: 0,
            mshr_occupancy: 0.0,
        }
    }

    fn fill_event(line: u64, at: u64, latency: u64) -> FillEvent {
        FillEvent {
            line: VLine::new(line),
            ip: IP,
            at: Cycle::new(at),
            latency,
            was_prefetch: false,
        }
    }

    /// Drives a steady +2 stride with fetch latency 100 and 300 cycles
    /// between accesses, so the +2 delta (one access of lead time,
    /// 300 >= 100) is timely.
    fn train_stride(b: &mut Berti, start_line: u64, accesses: u64) -> Vec<PrefetchDecision> {
        let mut out = Vec::new();
        for i in 0..accesses {
            let line = start_line + 2 * i;
            let t = 300 * i;
            b.on_access(&miss_event(line, t), &mut out);
            b.on_fill(&fill_event(line, t + 100, 100));
        }
        out
    }

    #[test]
    fn learns_and_prefetches_a_steady_stride() {
        let mut b = Berti::new(BertiConfig::default());
        let decisions = train_stride(&mut b, 1000, 40);
        assert!(
            !decisions.is_empty(),
            "after a full phase Berti must prefetch the learned delta"
        );
        // The learned delta set should contain +2 with L1 status.
        let learned = b.learned_deltas(IP);
        assert!(
            learned
                .iter()
                .any(|d| d.delta == Delta::new(2) && d.status == DeltaStatus::L1Pref),
            "learned: {learned:?}"
        );
        // Targets must be line + learned delta.
        let last_targets: Vec<u64> = decisions.iter().map(|d| d.target.raw()).collect();
        assert!(last_targets.iter().all(|&t| t >= 1000));
    }

    #[test]
    fn no_prefetch_without_confidence() {
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        // Random-ish lines: no repeated delta support.
        for (i, line) in [5u64, 900, 17, 4000, 33].iter().enumerate() {
            b.on_access(&miss_event(*line, 300 * i as u64), &mut out);
            b.on_fill(&fill_event(*line, 300 * i as u64 + 100, 100));
        }
        assert!(out.is_empty());
    }

    #[test]
    fn high_mshr_occupancy_demotes_to_l2_fill() {
        let mut b = Berti::new(BertiConfig::default());
        let _ = train_stride(&mut b, 1000, 40);
        let mut out = Vec::new();
        let mut ev = miss_event(2000, 100_000);
        ev.mshr_occupancy = 0.9; // above the 70% watermark
        b.on_access(&ev, &mut out);
        assert!(!out.is_empty());
        assert!(
            out.iter().all(|d| d.fill_level == FillLevel::L2),
            "L1Pref deltas must demote to L2 fills under MSHR pressure: {out:?}"
        );
    }

    #[test]
    fn low_mshr_occupancy_fills_l1() {
        let mut b = Berti::new(BertiConfig::default());
        let _ = train_stride(&mut b, 1000, 40);
        let mut out = Vec::new();
        b.on_access(&miss_event(2000, 100_000), &mut out);
        assert!(out.iter().any(|d| d.fill_level == FillLevel::L1));
    }

    #[test]
    fn cross_page_ablation_suppresses_page_crossers() {
        let cfg = BertiConfig {
            cross_page: false,
            ..BertiConfig::default()
        };
        let mut b = Berti::new(cfg);
        // Large stride that crosses pages: +80 lines (page = 64 lines).
        let mut out = Vec::new();
        for i in 0..40u64 {
            let line = 1000 + 80 * i;
            b.on_access(&miss_event(line, 300 * i), &mut out);
            b.on_fill(&fill_event(line, 300 * i + 100, 100));
        }
        assert!(
            out.is_empty(),
            "every +80 target crosses a page and must be suppressed"
        );
        // Training still happened.
        assert!(b
            .learned_deltas(IP)
            .iter()
            .any(|d| d.delta == Delta::new(80)));
    }

    #[test]
    fn four_bit_latency_field_kills_training() {
        let cfg = BertiConfig {
            latency_bits: 4, // latencies >= 16 overflow to 0
            ..BertiConfig::default()
        };
        let mut b = Berti::new(cfg);
        let out = train_stride(&mut b, 1000, 40);
        assert!(out.is_empty(), "latency 100 overflows a 4-bit field");
        assert!(b.learned_deltas(IP).is_empty());
    }

    #[test]
    fn late_deltas_are_not_learned() {
        // Accesses 10 cycles apart with latency 100: the +2 delta (one
        // access back) is NOT timely; only deltas ≥ 10 accesses back
        // would be, and the +20 delta appears consistently.
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        for i in 0..60u64 {
            let line = 1000 + 2 * i;
            let t = 10 * i;
            b.on_access(&miss_event(line, t), &mut out);
            b.on_fill(&fill_event(line, t + 100, 100));
        }
        let learned = b.learned_deltas(IP);
        assert!(
            !learned.iter().any(|d| d.delta == Delta::new(2)
                && (d.status == DeltaStatus::L1Pref || d.status == DeltaStatus::L2Pref)),
            "+2 would be a late prefetch and must not be selected: {learned:?}"
        );
        assert!(
            learned.iter().any(|d| d.delta.raw() >= 20),
            "a larger, timely delta must be learned instead: {learned:?}"
        );
    }

    #[test]
    fn trains_on_prefetched_hit_with_stored_latency() {
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        // Seed history with older accesses.
        for i in 0..20u64 {
            b.on_access(&miss_event(100 + 3 * i, 300 * i), &mut out);
            b.on_fill(&fill_event(100 + 3 * i, 300 * i + 90, 90));
        }
        // Now a prefetched-line first touch (hit_p) continues training.
        let ev = AccessEvent {
            ip: IP,
            line: VLine::new(100 + 3 * 20),
            at: Cycle::new(300 * 20),
            kind: AccessKind::Load,
            hit: true,
            timely_prefetch_hit: true,
            late_prefetch_hit: false,
            stored_latency: 90,
            mshr_occupancy: 0.0,
        };
        b.on_access(&ev, &mut out);
        assert!(b
            .learned_deltas(IP)
            .iter()
            .any(|d| d.delta == Delta::new(3)));
    }

    #[test]
    fn prefetch_fills_do_not_train() {
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        b.on_access(&miss_event(100, 0), &mut out);
        b.on_fill(&FillEvent {
            line: VLine::new(102),
            ip: IP,
            at: Cycle::new(200),
            latency: 100,
            was_prefetch: true,
        });
        // Only the demand miss is in history; no search has happened,
        // so nothing can be learned yet.
        assert!(b.learned_deltas(IP).is_empty());
    }

    #[test]
    fn inconsistent_fill_latency_is_dropped_not_clamped() {
        // Regression (ISSUE 5 satellite): a latency larger than the fill
        // cycle used to clamp the demand time to 0 via saturating_sub,
        // silently widening the timeliness window. It must be dropped
        // and counted.
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        b.on_access(&miss_event(100, 0), &mut out);
        b.on_access(&miss_event(102, 10), &mut out);
        // Fill at cycle 50 claiming 500 cycles of latency: impossible.
        b.on_fill(&fill_event(102, 50, 500));
        assert_eq!(b.drop_counters().0, 1);
        assert!(
            b.learned_deltas(IP).is_empty(),
            "the inconsistent sample must not train"
        );
    }

    #[test]
    fn underflowing_prediction_targets_are_dropped_with_counter() {
        // Regression (ISSUE 5 satellite): `VLine + Delta` wraps on
        // underflow, so a learned negative delta applied near line 0
        // used to emit a garbage-address prefetch whose cross-page
        // check was meaningless.
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        // Learn a -2 stride far from zero.
        for i in 0..40u64 {
            let line = 500_000 - 2 * i;
            let t = 300 * i;
            b.on_access(&miss_event(line, t), &mut out);
            b.on_fill(&fill_event(line, t + 100, 100));
        }
        assert!(b.learned_deltas(IP).iter().any(|d| d.delta.raw() < 0));
        out.clear();
        // Trigger at line 0: every negative delta underflows.
        b.on_access(&miss_event(0, 100_000), &mut out);
        assert!(
            out.iter().all(|d| d.target.raw() < (1 << 32)),
            "no wrapped targets may escape: {out:?}"
        );
        assert!(
            b.drop_counters().1 >= 1,
            "underflowing targets must be counted"
        );
    }

    #[test]
    fn storage_matches_table_i() {
        let b = Berti::new(BertiConfig::default());
        let kb = b.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 2.55).abs() < 0.02, "{kb}");
    }

    #[test]
    fn per_ip_isolation() {
        // Two IPs with different strides must learn different deltas
        // (the paper's core claim vs. global-delta prefetchers).
        let mut b = Berti::new(BertiConfig::default());
        let mut out = Vec::new();
        let ip2 = Ip::new(0x402dc7);
        for i in 0..40u64 {
            let t = 600 * i;
            let l1 = 1000 + 2 * i;
            let l2 = 500_000 - i; // -1 stride
            b.on_access(&miss_event(l1, t), &mut out);
            b.on_fill(&fill_event(l1, t + 100, 100));
            let ev2 = AccessEvent {
                ip: ip2,
                line: VLine::new(l2),
                at: Cycle::new(t + 300),
                ..miss_event(l2, t + 300)
            };
            b.on_access(&ev2, &mut out);
            b.on_fill(&FillEvent {
                line: VLine::new(l2),
                ip: ip2,
                at: Cycle::new(t + 300 + 100),
                latency: 100,
                was_prefetch: false,
            });
        }
        let d1 = b.learned_deltas(IP);
        let d2 = b.learned_deltas(ip2);
        assert!(d1.iter().any(|d| d.delta.raw() > 0));
        assert!(d2.iter().any(|d| d.delta.raw() < 0));
    }
}
