//! The core pipeline: dispatch, execute (through a [`DataPort`]), and
//! in-order retire.

use std::collections::VecDeque;

use berti_types::{CoreConfig, Cycle, Instr, Ip, VAddr, MAX_DEP_CHAINS};

/// Kind of a memory operation presented to the port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOpKind {
    /// A demand load.
    Load,
    /// A store (read-for-ownership).
    Store,
}

/// Response of the memory system to a demand.
#[derive(Clone, Copy, Debug)]
pub enum PortResponse {
    /// Data (or ownership) available at the given cycle.
    Ready(Cycle),
    /// The L1D MSHR is full; retry next cycle.
    Stall,
}

/// The core's window into the memory hierarchy. Implemented by the
/// simulator over `berti_mem::Hierarchy` + `SharedMemory`.
pub trait DataPort {
    /// Issues a demand access at cycle `at`.
    fn demand(&mut self, ip: Ip, addr: VAddr, kind: MemOpKind, at: Cycle) -> PortResponse;
}

berti_stats::counter_group! {
    /// Retired-work counters.
    pub struct CoreStats {
        /// Cycles simulated.
        pub cycles: u64,
        /// Instructions retired.
        pub instructions: u64,
        /// Loads issued.
        pub loads: u64,
        /// Stores issued.
        pub stores: u64,
        /// Cycles in which dispatch was blocked by a full ROB.
        pub rob_full_cycles: u64,
        /// Cycles in which a load could not issue because the L1D MSHR was
        /// full.
        pub mshr_stall_cycles: u64,
        /// Mispredicted branches seen.
        pub mispredicts: u64,
    }
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct RobEntry {
    complete_at: Cycle,
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    now: Cycle,
    rob: VecDeque<RobEntry>,
    /// Front end refills at this cycle after a mispredict.
    fetch_resume_at: Cycle,
    /// Completion time of the youngest load per dependence chain.
    chain_ready: [Cycle; MAX_DEP_CHAINS],
    /// Instruction stalled at dispatch waiting for an MSHR entry.
    replay: Option<Instr>,
    stats: CoreStats,
}

impl Core {
    /// Creates a core.
    pub fn new(cfg: CoreConfig) -> Self {
        Self {
            cfg,
            now: Cycle::ZERO,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            fetch_resume_at: Cycle::ZERO,
            chain_ready: [Cycle::ZERO; MAX_DEP_CHAINS],
            replay: None,
            stats: CoreStats::default(),
        }
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Resets counters at the end of warm-up (pipeline state persists).
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Whether all dispatched work has retired.
    pub fn drained(&self) -> bool {
        self.rob.is_empty() && self.replay.is_none()
    }

    /// Skip-ahead contract: if the next [`Core::cycle`] call could
    /// neither retire nor dispatch (ROB full, or the front end is
    /// refilling after a mispredict), returns the first cycle at which
    /// that changes; `None` means the core can make progress *now* and
    /// must be stepped normally.
    ///
    /// The returned cycle is conservative in exactly the way
    /// [`Core::skip_to`] needs: every cycle in `[now, wake)` is
    /// guaranteed to be an idle cycle whose only effect is counter
    /// bookkeeping, with the blocking conditions unchanged throughout.
    pub fn quiescent_until(&self) -> Option<Cycle> {
        let now = self.now;
        if let Some(front) = self.rob.front() {
            if front.complete_at <= now {
                return None; // retire possible
            }
        }
        let fetch_blocked = now < self.fetch_resume_at;
        let rob_full = self.rob.len() >= self.cfg.rob_entries;
        if !fetch_blocked && !rob_full {
            return None; // would dispatch (fetch or replay)
        }
        let mut wake = match self.rob.front() {
            Some(front) => front.complete_at,
            // Empty ROB implies !rob_full, so fetch_blocked holds and
            // the min below always lowers this sentinel.
            None => Cycle::new(u64::MAX),
        };
        if fetch_blocked {
            wake = wake.min(self.fetch_resume_at);
        }
        Some(wake)
    }

    /// Fast-forwards an idle stretch to `target`, performing exactly
    /// the bookkeeping the per-cycle loop would have: `target - now`
    /// counted cycles, each also counted as ROB-full when dispatch was
    /// attempted-and-blocked (naive dispatch only attempts once the
    /// front end has resumed).
    ///
    /// `target` must not exceed [`Core::quiescent_until`], otherwise
    /// a retire/dispatch opportunity would be skipped over.
    pub fn skip_to(&mut self, target: Cycle) {
        debug_assert!(
            self.quiescent_until().is_some_and(|wake| target <= wake),
            "skip_to past a wake-up would lose work"
        );
        let skipped = target - self.now;
        if skipped == 0 {
            return;
        }
        self.stats.cycles += skipped;
        let fetch_blocked = self.now < self.fetch_resume_at;
        if !fetch_blocked && self.rob.len() >= self.cfg.rob_entries {
            self.stats.rob_full_cycles += skipped;
        }
        self.now = target;
    }

    /// Simulates one cycle: retire, then dispatch/execute. `fetch`
    /// supplies the next trace instruction (None = trace exhausted).
    /// Returns the number of instructions retired this cycle.
    pub fn cycle<F>(&mut self, port: &mut dyn DataPort, mut fetch: F) -> u64
    where
        F: FnMut() -> Option<Instr>,
    {
        let now = self.now;
        self.stats.cycles += 1;

        // Retire in order.
        let mut retired = 0;
        while retired < self.cfg.retire_width as u64 {
            match self.rob.front() {
                Some(e) if e.complete_at <= now => {
                    self.rob.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }
        self.stats.instructions += retired;

        // Dispatch and execute.
        if now >= self.fetch_resume_at {
            let mut loads_this_cycle = 0usize;
            let mut stores_this_cycle = 0usize;
            for _ in 0..self.cfg.issue_width {
                if self.rob.len() >= self.cfg.rob_entries {
                    self.stats.rob_full_cycles += 1;
                    break;
                }
                let instr = match self.replay.take() {
                    Some(i) => i,
                    None => match fetch() {
                        Some(i) => i,
                        None => break,
                    },
                };
                // Port limits: if this instruction needs more ports than
                // remain this cycle, hold it for the next one.
                let needs_loads = instr.loads.iter().flatten().count();
                let needs_store = usize::from(instr.store.is_some());
                if loads_this_cycle + needs_loads > self.cfg.l1d_read_ports
                    || stores_this_cycle + needs_store > self.cfg.l1d_write_ports
                {
                    self.replay = Some(instr);
                    break;
                }
                match self.execute(port, &instr, now) {
                    Some(complete_at) => {
                        loads_this_cycle += needs_loads;
                        stores_this_cycle += needs_store;
                        self.rob.push_back(RobEntry { complete_at });
                        if instr.mispredicted_branch {
                            self.stats.mispredicts += 1;
                            self.fetch_resume_at = complete_at + self.cfg.mispredict_penalty;
                            break;
                        }
                    }
                    None => {
                        // MSHR full: hold the instruction, retry next cycle.
                        self.stats.mshr_stall_cycles += 1;
                        self.replay = Some(instr);
                        break;
                    }
                }
            }
        }

        self.now += 1;
        retired
    }

    /// Computes the completion time of `instr`, issuing its memory
    /// operations. Returns None if the L1D cannot accept a miss.
    fn execute(&mut self, port: &mut dyn DataPort, instr: &Instr, now: Cycle) -> Option<Cycle> {
        // Dependence chains delay the issue of chained loads.
        let issue_at = match instr.dep_chain {
            Some(c) => now.max(self.chain_ready[c as usize]),
            None => now,
        };
        let mut complete_at = now + 1;
        for addr in instr.loads.iter().flatten() {
            match port.demand(instr.ip, *addr, MemOpKind::Load, issue_at) {
                PortResponse::Ready(t) => {
                    complete_at = complete_at.max(t);
                    self.stats.loads += 1;
                }
                PortResponse::Stall => return None,
            }
        }
        if let Some(addr) = instr.store {
            match port.demand(instr.ip, addr, MemOpKind::Store, issue_at) {
                PortResponse::Ready(t) => {
                    complete_at = complete_at.max(t);
                    self.stats.stores += 1;
                }
                PortResponse::Stall => return None,
            }
        }
        if let Some(c) = instr.dep_chain {
            self.chain_ready[c as usize] = complete_at;
        }
        Some(complete_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A memory system with fixed latency and optional stall windows.
    struct FixedMem {
        latency: u64,
        accesses: Vec<(VAddr, Cycle)>,
        stall_first_n: usize,
    }

    impl DataPort for FixedMem {
        fn demand(&mut self, _ip: Ip, addr: VAddr, _k: MemOpKind, at: Cycle) -> PortResponse {
            if self.stall_first_n > 0 {
                self.stall_first_n -= 1;
                return PortResponse::Stall;
            }
            self.accesses.push((addr, at));
            PortResponse::Ready(at + self.latency)
        }
    }

    fn mem(latency: u64) -> FixedMem {
        FixedMem {
            latency,
            accesses: Vec::new(),
            stall_first_n: 0,
        }
    }

    fn run(core: &mut Core, port: &mut FixedMem, mut prog: Vec<Instr>, max_cycles: u64) {
        prog.reverse();
        for _ in 0..max_cycles {
            core.cycle(port, || prog.pop());
            if prog.is_empty() && core.drained() {
                break;
            }
        }
    }

    #[test]
    fn alu_stream_retires_at_retire_width() {
        let mut core = Core::new(CoreConfig::default());
        let mut m = mem(1);
        let prog: Vec<Instr> = (0..400).map(|i| Instr::alu(Ip::new(i))).collect();
        run(&mut core, &mut m, prog, 10_000);
        let s = core.stats();
        assert_eq!(s.instructions, 400);
        // 4-wide retire bounds IPC at 4.
        assert!(s.ipc() <= 4.0 + 1e-9);
        assert!(s.ipc() > 2.0, "ipc {}", s.ipc());
    }

    #[test]
    fn independent_loads_overlap() {
        let cfg = CoreConfig::default();
        let mut core = Core::new(cfg);
        let mut m = mem(200);
        let prog: Vec<Instr> = (0..100)
            .map(|i| Instr::load(Ip::new(1), VAddr::new(i * 64)))
            .collect();
        run(&mut core, &mut m, prog, 100_000);
        let s = core.stats();
        assert_eq!(s.loads, 100);
        // With MLP, far faster than 100 × 200 serial cycles.
        assert!(s.cycles < 2_000, "cycles {}", s.cycles);
    }

    #[test]
    fn dependent_loads_serialize() {
        let cfg = CoreConfig::default();
        let mut core = Core::new(cfg);
        let mut m = mem(200);
        let prog: Vec<Instr> = (0..50)
            .map(|i| Instr::dependent_load(Ip::new(1), VAddr::new(i * 64), 0))
            .collect();
        run(&mut core, &mut m, prog, 100_000);
        let s = core.stats();
        // Each load waits for the previous: ≈ 50 × 200 cycles.
        assert!(s.cycles >= 50 * 200, "cycles {}", s.cycles);
    }

    #[test]
    fn two_chains_overlap_each_other() {
        let cfg = CoreConfig::default();
        let mut core = Core::new(cfg);
        let mut m = mem(200);
        let mut prog = Vec::new();
        for i in 0..50u64 {
            prog.push(Instr::dependent_load(Ip::new(1), VAddr::new(i * 64), 0));
            prog.push(Instr::dependent_load(
                Ip::new(2),
                VAddr::new((1000 + i) * 64),
                1,
            ));
        }
        run(&mut core, &mut m, prog, 100_000);
        // Two independent chains: same wall clock as one chain.
        assert!(core.stats().cycles < 50 * 200 + 2000);
    }

    #[test]
    fn rob_bounds_the_window() {
        let cfg = CoreConfig {
            rob_entries: 8,
            ..CoreConfig::default()
        };
        let mut core = Core::new(cfg);
        let mut m = mem(500);
        let prog: Vec<Instr> = (0..64)
            .map(|i| Instr::load(Ip::new(1), VAddr::new(i * 64)))
            .collect();
        run(&mut core, &mut m, prog, 1_000_000);
        // 64 loads / 8-entry window ≈ 8 serialized batches of 500.
        assert!(
            core.stats().cycles >= 7 * 500,
            "cycles {}",
            core.stats().cycles
        );
    }

    #[test]
    fn mispredict_stalls_the_front_end() {
        let cfg = CoreConfig::default();
        let mut base = Core::new(cfg);
        let mut m1 = mem(1);
        let prog: Vec<Instr> = (0..100).map(|i| Instr::alu(Ip::new(i))).collect();
        run(&mut base, &mut m1, prog, 100_000);

        let mut bad = Core::new(cfg);
        let mut m2 = mem(1);
        let prog: Vec<Instr> = (0..100)
            .map(|i| {
                if i % 10 == 0 {
                    Instr::mispredicted_branch(Ip::new(i))
                } else {
                    Instr::alu(Ip::new(i))
                }
            })
            .collect();
        run(&mut bad, &mut m2, prog, 100_000);
        assert_eq!(bad.stats().mispredicts, 10);
        // Each mispredict costs ≈ the refill penalty (some of it
        // overlaps with retiring the already-dispatched window).
        assert!(
            bad.stats().cycles >= base.stats().cycles + 10 * (cfg.mispredict_penalty - 3),
            "{} vs {}",
            bad.stats().cycles,
            base.stats().cycles
        );
    }

    #[test]
    fn mshr_stall_replays_the_same_instruction() {
        let cfg = CoreConfig::default();
        let mut core = Core::new(cfg);
        let mut m = mem(10);
        m.stall_first_n = 3;
        let prog = vec![Instr::load(Ip::new(1), VAddr::new(64))];
        run(&mut core, &mut m, prog, 1000);
        let s = core.stats();
        assert_eq!(s.loads, 1, "the load must eventually issue once");
        assert_eq!(s.mshr_stall_cycles, 3);
        assert_eq!(s.instructions, 1);
    }

    #[test]
    fn load_ports_limit_issue() {
        let cfg = CoreConfig::default();
        let mut core = Core::new(cfg);
        let mut m = mem(1);
        // 6-wide issue but only 2 load ports: 3 loads cannot dispatch in
        // one cycle.
        let prog: Vec<Instr> = (0..30)
            .map(|i| Instr::load(Ip::new(1), VAddr::new(i * 64)))
            .collect();
        run(&mut core, &mut m, prog, 10_000);
        // 30 loads / 2 ports = 15 dispatch cycles minimum.
        assert!(core.stats().cycles >= 15);
    }
}
