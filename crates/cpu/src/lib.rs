//! Trace-driven out-of-order core model (Table II: 6-issue, 4-retire,
//! 352-entry ROB, two L1D read ports, one write port).
//!
//! The model captures the pipeline properties the paper's evaluation
//! depends on:
//!
//! - **ROB-bounded memory-level parallelism** — misses overlap until
//!   the 352-entry ROB or the L1D MSHR fills, which is what makes
//!   prefetch *timeliness* matter;
//! - **out-of-order issue** — loads issue as they dispatch, so the L1D
//!   observes the reordered stream of Sec. II-B;
//! - **dependence chains** — loads in the same declared chain
//!   serialize (pointer chasing), limiting MLP exactly where graph
//!   workloads limit it;
//! - **front-end stalls** on mispredicted branches (fixed penalty).
//!
//! Register renaming, functional units, and the store queue are
//! abstracted away (see DESIGN.md substitution #2): non-memory
//! instructions complete in one cycle, stores issue their RFO at
//! dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;

pub use core_model::{Core, CoreStats, DataPort, MemOpKind, PortResponse};
