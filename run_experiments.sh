#!/bin/bash
# Regenerates every table and figure of the paper (DESIGN.md section 4).
# Output goes to results/<name>.txt. Raise BERTI_INSTR for longer runs.
set -u
cd "$(dirname "$0")"
BINS="tab01_storage tab02_config tab03_prefetcher_configs fig01_accuracy_energy \
fig03_local_vs_global fig07_speedup_storage fig08_l1d_speedup fig09_per_trace \
fig10_accuracy fig11_mpki fig12_multilevel fig13_multilevel_mpki fig14_traffic \
fig15_energy fig16_bandwidth_l1d fig17_bandwidth_multilevel fig18_cloudsuite \
fig19_misb fig20_multicore fig21_watermarks fig22_table_sizes \
sens_latency_bits sens_cross_page sens_local_context"
for b in $BINS; do
  echo "== $b =="
  cargo run -q --release -p berti-bench --bin "$b" 2>/dev/null | tee "results/$b.txt"
done
